//! Rule `atomics`: every memory-ordering choice must be justified.
//!
//! The workspace uses atomics in four places with security-relevant
//! semantics: the arch-dispatch `ACTIVE` backend selector, the prepared-key
//! cache hit/miss/eviction counters, the entropy-seed monotone counter,
//! and the zeroize compiler fences. A wrong `Ordering` in any of them is
//! silent — the code compiles, the tests pass on x86's strong memory
//! model, and the bug only surfaces as a reordered security decision on a
//! weakly-ordered target. So the rule is: *choosing* an ordering is an
//! act that requires a written justification.
//!
//! * Every `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` site
//!   must carry a `// lint: ordering(reason)` annotation (same line or the
//!   line above). The reason string is mandatory and is surfaced as an
//!   allowance in the lint summary and baseline — an unjustified ordering
//!   is a finding.
//! * `Relaxed` on a *read-modify-write* (`fetch_*`, `swap`,
//!   `compare_exchange*`) inside security-scoped crates (`hash`, `ibs`,
//!   `core`) is an error even when annotated with `ordering(...)`: an RMW
//!   that feeds a security decision (entropy uniqueness, key-cache
//!   accounting) must not be free to reorder against the decision it
//!   feeds. Only an explicit `// lint: allow(atomics, reason=…)` — which
//!   lands in the baseline for review — can suppress it.
//!
//! `std::cmp::Ordering` never collides with this rule: its variants
//! (`Less`/`Equal`/`Greater`) are not memory orderings.

use crate::rules::{FileCtx, Finding, Report, RULE_ATOMICS};

/// The five memory orderings of `core::sync::atomic::Ordering`.
const MEMORY_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic read-modify-write methods: a load *and* a store in one step.
const RMW_METHODS: [&str; 12] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Crates whose atomics feed security decisions (entropy counters, key
/// caches, wire framing): `Relaxed` RMW is an error here.
const SECURITY_SCOPE: [&str; 3] = ["crates/hash/src/", "crates/ibs/src/", "crates/core/src/"];

/// Runs the `atomics` rule over one file's token stream.
pub fn check_atomics(ctx: &FileCtx, all_rules: bool, report: &mut Report) {
    let security = all_rules || SECURITY_SCOPE.iter().any(|p| ctx.path.starts_with(p));
    for (i, tok) in ctx.toks.iter().enumerate() {
        if tok.text != "Ordering" {
            continue;
        }
        if ctx.toks.get(i + 1).is_none_or(|t| t.text != "::") {
            continue;
        }
        let Some(variant) = ctx.toks.get(i + 2) else {
            continue;
        };
        if !MEMORY_ORDERINGS.contains(&variant.text.as_str()) {
            continue;
        }
        let line = variant.line;
        // Tests may order freely: a racy test fails loudly, and demanding
        // annotations there would drown the signal.
        if ctx.test_lines.contains(&line) {
            continue;
        }
        let allowed = ctx.rule_allowed(RULE_ATOMICS, line);
        if !ctx.ordering_lines.contains(&line) && !allowed {
            report.findings.push(Finding {
                rule: RULE_ATOMICS,
                file: ctx.path.clone(),
                line,
                message: format!(
                    "`Ordering::{}` without a `// lint: ordering(reason)` justification — \
                     every memory-ordering choice must say why it is strong enough \
                     (DESIGN.md §9)",
                    variant.text
                ),
            });
        }
        if variant.text == "Relaxed" && security && !allowed {
            if let Some(method) = enclosing_call_method(ctx, i) {
                if RMW_METHODS.contains(&method.as_str()) {
                    report.findings.push(Finding {
                        rule: RULE_ATOMICS,
                        file: ctx.path.clone(),
                        line,
                        message: format!(
                            "`Relaxed` read-modify-write (`{method}`) on a security-scoped \
                             atomic — a counter or selector feeding a security decision needs \
                             `SeqCst` (or at least `AcqRel`); `ordering(...)` cannot bless \
                             this, only `// lint: allow(atomics, reason=...)` can"
                        ),
                    });
                }
            }
        }
    }
}

/// Walks backwards from the `Ordering` token at `i` to the unmatched `(`
/// that opened the enclosing call, and returns the method name before it.
fn enclosing_call_method(ctx: &FileCtx, i: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = ctx.toks.get(j)?;
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    let name = ctx.toks.get(j.checked_sub(1)?)?;
                    return Some(name.text.clone());
                }
                depth -= 1;
            }
            ";" | "{" | "}" if depth == 0 => return None,
            _ => {}
        }
        // Bound the scan: an Ordering argument sits close to its call.
        if i - j > 64 {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_files;

    fn atomics_findings(path: &str, src: &str) -> Vec<Finding> {
        lint_files(&[(path.to_string(), src.to_string())], false)
            .findings
            .into_iter()
            .filter(|f| f.rule == RULE_ATOMICS)
            .collect()
    }

    #[test]
    fn unjustified_ordering_is_flagged() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n\
                   c.load(Ordering::SeqCst)\n\
                   }\n";
        let hits = atomics_findings("crates/registry/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn ordering_annotation_justifies_a_site() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n\
                   // lint: ordering(statistics counter, no ordering dependency)\n\
                   c.load(Ordering::Relaxed)\n\
                   }\n";
        assert!(atomics_findings("crates/registry/src/x.rs", src).is_empty());
    }

    #[test]
    fn relaxed_rmw_in_security_scope_is_an_error_despite_ordering_note() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n\
                   // lint: ordering(counter increment)\n\
                   c.fetch_add(1, Ordering::Relaxed)\n\
                   }\n";
        let hits = atomics_findings("crates/hash/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("read-modify-write"), "{hits:?}");
    }

    #[test]
    fn relaxed_rmw_outside_security_scope_needs_only_the_note() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n\
                   // lint: ordering(progress metric, never read for decisions)\n\
                   c.fetch_add(1, Ordering::Relaxed)\n\
                   }\n";
        assert!(atomics_findings("crates/resilience/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_atomics_suppresses_the_rmw_error() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n\
                   // lint: allow(atomics, reason=hit counter is diagnostics-only)\n\
                   c.fetch_add(1, Ordering::Relaxed)\n\
                   }\n";
        assert!(atomics_findings("crates/hash/src/x.rs", src).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_a_memory_ordering() {
        let src = "fn f(a: u32, b: u32) -> std::cmp::Ordering {\n\
                   if a < b { Ordering::Less } else { Ordering::Greater }\n\
                   }\n";
        assert!(atomics_findings("crates/hash/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n\
                   c.fetch_add(1, Ordering::Relaxed)\n\
                   }\n}\n";
        assert!(atomics_findings("crates/hash/src/x.rs", src).is_empty());
    }
}
