//! Interprocedural secret taint flow (rule `taint`).
//!
//! Taint is seeded wherever a value's declared or inferred type names a
//! `// lint: secret` type (`MasterKey`, `UserKey`, `VerifierKey`,
//! `HmacDrbg`), then propagated through `let` bindings, assignments,
//! field access, and — via per-function summaries — across call edges.
//! A finding fires when a tainted value reaches a *sink*: a
//! `format!`-family macro (Debug/Display formatting, panics, asserts)
//! or a wire-encode method (`put_*`, `encode_body`, `to_wire`). This
//! replaces the PR 3 same-line heuristic, which could not see
//! `let x = key.sk(); emit(x)`.
//!
//! Two deliberate imprecisions, both toward the paper's threat model:
//!
//! * **Declassification through crypto.** Calls resolving into
//!   `crates/{pairing,bigint,hash,ibs}` drop taint — signatures, tags,
//!   digests and DRBG output are *derived from* secrets but safe to
//!   publish by design (that is the whole point of the scheme). The
//!   exception is a call whose return type names a secret type
//!   (`HmacDrbg::new`, `MasterKey::extract`): constructors re-taint.
//! * **Fields stay tainted.** Any field read off a secret-typed base is
//!   treated as secret, even public metadata, because key structs are
//!   small and the cost of a miss (printing `sk_ID`) is protocol-fatal.
//!   Use `// lint: allow(taint, reason=…)` where metadata is provably
//!   public.
//!
//! Summaries are three masks per fn — params flowing to the return
//! value, params flowing to a sink, and whether the return is secret —
//! iterated to a fixpoint, then one reporting pass records findings.

use std::collections::{HashMap, HashSet};

use crate::ast::Expr;
use crate::callgraph::{FnNode, Typer, Workspace};
use crate::rules::{FileCtx, Finding, Report, FORMAT_MACROS, RULE_TAINT};

/// Bit 63 marks "directly secret"; bits 0..62 mark "derived from param i".
const SECRET: u64 = 1 << 63;

/// Methods that encode their arguments (and for `encode_body`/`to_wire`,
/// their receiver) onto the wire.
const WIRE_SINKS: [&str; 10] = [
    "put_bytes",
    "put_fixed",
    "put_str",
    "put_u8",
    "put_u16",
    "put_u32",
    "put_u64",
    "put_u128",
    "encode_body",
    "to_wire",
];

/// Sinks whose receiver (not just arguments) is encoded.
const RECV_SINKS: [&str; 2] = ["encode_body", "to_wire"];

/// Crates whose calls declassify taint (see module docs). `ibs` is the
/// signing/derivation layer: its outputs (signatures, tags, warrants)
/// are public by design, and its secret-typed returns re-taint.
const DECLASS_CRATES: [&str; 4] = [
    "crates/pairing/",
    "crates/bigint/",
    "crates/hash/",
    "crates/ibs/",
];

/// Per-fn dataflow summary.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct Summary {
    /// Params whose taint reaches the return value.
    ret_params: u64,
    /// The return value is secret regardless of arguments.
    ret_secret: bool,
    /// Params whose taint reaches a format/wire sink inside (or below)
    /// this fn. Secret-*typed* params are excluded — those are reported
    /// directly in the fn that holds the sink.
    sink_params: u64,
}

/// Runs the taint rule over the workspace.
pub fn check_taint(
    ws: &Workspace,
    typers: &[Typer<'_>],
    ctxs: &HashMap<&str, &FileCtx>,
    secret_names: &HashSet<String>,
    all_rules: bool,
    report: &mut Report,
) {
    if secret_names.is_empty() {
        return;
    }
    let n = ws.fns.len();
    let summaries = ws.fixpoint_summaries(Summary::default(), |i, sums| {
        analyze_fn(ws, typers, i, sums, secret_names, all_rules, None)
    });
    // Reporting pass.
    let mut findings = Vec::new();
    for i in 0..n {
        let _ = analyze_fn(
            ws,
            typers,
            i,
            &summaries,
            secret_names,
            all_rules,
            Some(&mut findings),
        );
    }
    for f in findings {
        let allowed = ctxs
            .get(f.file.as_str())
            .is_some_and(|c| c.rule_allowed(RULE_TAINT, f.line) || c.test_lines.contains(&f.line));
        if !allowed {
            report.findings.push(f);
        }
    }
}

fn is_declass(path: &str) -> bool {
    DECLASS_CRATES.iter().any(|p| path.starts_with(p))
}

/// Does this type string name a secret type? (Shared with `ctflow`.)
pub(crate) fn ty_secret(ty: &str, secret_names: &HashSet<String>) -> bool {
    secret_names.iter().any(|s| contains_word(ty, s))
}

/// Does `f`'s declared return type name a secret type (directly or as
/// `Self` on a secret owner)? (Shared with `ctflow`.)
pub(crate) fn ret_names_secret(f: &FnNode, secret_names: &HashSet<String>) -> bool {
    f.ret.as_deref().is_some_and(|r| {
        ty_secret(r, secret_names)
            || (contains_word(r, "Self")
                && f.owner.as_deref().is_some_and(|o| secret_names.contains(o)))
    })
}

/// Word-boundary containment so `UserKey` does not match `UserKeyring`.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut rest = hay;
    while let Some(pos) = rest.find(needle) {
        let before_ok = rest
            .get(..pos)
            .and_then(|s| s.chars().last())
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        let after_ok = rest
            .get(pos + needle.len()..)
            .and_then(|s| s.chars().next())
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if before_ok && after_ok {
            return true;
        }
        rest = rest.get(pos + 1..).unwrap_or("");
    }
    false
}

/// One evaluation of a fn body. Returns the fn's summary; when
/// `findings` is set, also records sink hits (the reporting pass).
fn analyze_fn(
    ws: &Workspace,
    typers: &[Typer<'_>],
    fn_idx: usize,
    summaries: &[Summary],
    secret_names: &HashSet<String>,
    all_rules: bool,
    findings: Option<&mut Vec<Finding>>,
) -> Summary {
    let Some(f) = ws.fns.get(fn_idx) else {
        return Summary::default();
    };
    let Some(body) = &f.body else {
        return Summary::default();
    };
    let path = ws.path_of(fn_idx);
    if f.is_test {
        return Summary::default();
    }
    let mut ev = Eval {
        ws,
        summaries,
        secret_names,
        typer: match typers.get(fn_idx) {
            Some(t) => t,
            None => return Summary::default(),
        },
        locals: HashMap::new(),
        owner: f.owner.clone(),
        owner_secret: f.owner.as_deref().is_some_and(|o| secret_names.contains(o)),
        param_secret_typed: 0,
        out: Summary::default(),
        findings,
        file: path.to_string(),
        report_sinks: all_rules || !is_declass(path),
    };
    for (i, p) in f.params.iter().enumerate().take(62) {
        let mut mask = 1u64 << i;
        let secret_param = if p.name == "self" {
            ev.owner_secret
        } else {
            ty_secret(&p.ty, secret_names)
        };
        if secret_param {
            mask |= SECRET;
            ev.param_secret_typed |= 1u64 << i;
        }
        ev.locals.insert(p.name.clone(), mask);
    }
    let ret_mask = ev.eval(body);
    ev.out.ret_params |= ret_mask & !SECRET;
    if ret_mask & SECRET != 0 {
        ev.out.ret_secret = true;
    }
    // A fn whose return type names a secret type returns a secret no
    // matter what the body analysis saw (constructors in declass crates).
    if ret_names_secret(f, secret_names) {
        ev.out.ret_secret = true;
    }
    ev.out.sink_params &= !ev.param_secret_typed;
    ev.out.ret_params &= (1u64 << f.params.len().min(62)) - 1;
    ev.out
}

struct Eval<'a> {
    ws: &'a Workspace,
    summaries: &'a [Summary],
    secret_names: &'a HashSet<String>,
    typer: &'a Typer<'a>,
    locals: HashMap<String, u64>,
    owner: Option<String>,
    owner_secret: bool,
    param_secret_typed: u64,
    out: Summary,
    findings: Option<&'a mut Vec<Finding>>,
    file: String,
    report_sinks: bool,
}

impl Eval<'_> {
    fn sink(&mut self, mask: u64, line: u32, what: &str) {
        self.out.sink_params |= mask & !SECRET;
        if mask & SECRET != 0 && self.report_sinks {
            if let Some(f) = self.findings.as_deref_mut() {
                f.push(Finding {
                    rule: RULE_TAINT,
                    file: self.file.clone(),
                    line,
                    message: format!(
                        "secret-derived value reaches {what} — secrets must never be \
                         formatted or wire-encoded; derive a public value first (sign/hash) \
                         or annotate `// lint: allow(taint, reason=...)`"
                    ),
                });
            }
        }
    }

    /// Applies a resolved callee's summary to the argument masks
    /// (`args[0]` aligned with the callee's first param).
    fn apply_summary(
        &mut self,
        targets: &[usize],
        arg_masks: &[u64],
        line: u32,
        name: &str,
    ) -> u64 {
        let mut out = 0u64;
        for &t in targets {
            let Some(callee) = self.ws.fns.get(t) else {
                continue;
            };
            let callee_path = self.ws.path_of(t);
            let summary = self.summaries.get(t).copied().unwrap_or_default();
            if is_declass(callee_path) {
                // Declassification is by declared type, not dataflow:
                // only constructors (return type naming a secret type)
                // re-taint. A getter whose *body* touches key material
                // still returns public data by design.
                if ret_names_secret(callee, self.secret_names) {
                    out |= SECRET;
                }
                continue;
            }
            for (i, m) in arg_masks.iter().enumerate().take(62) {
                let bit = 1u64 << i;
                if summary.ret_params & bit != 0 {
                    out |= m;
                }
                if summary.sink_params & bit != 0 {
                    self.sink(
                        *m,
                        line,
                        &format!("a format/wire sink via `{}`", qualified(callee, name)),
                    );
                }
            }
            if summary.ret_secret {
                out |= SECRET;
            }
        }
        if targets.is_empty() {
            // Unresolved (std) call: taint flows through (`.clone()`,
            // `Some(…)`, `.to_vec()` all preserve secrecy).
            out = arg_masks.iter().fold(0, |a, m| a | m);
        }
        out
    }

    fn bind(&mut self, names: &[String], mask: u64) {
        for n in names {
            *self.locals.entry(n.clone()).or_insert(0) |= mask;
        }
    }

    fn field_secret(&self, base: &Expr, name: &str) -> bool {
        let Some(base_ty) = self.typer.infer(base) else {
            return false;
        };
        self.ws
            .struct_fields
            .get(&base_ty)
            .and_then(|fields| fields.get(name))
            .is_some_and(|ty| ty_secret(ty, self.secret_names))
    }

    fn eval(&mut self, e: &Expr) -> u64 {
        match e {
            Expr::Path { segs, .. } => match segs.as_slice() {
                [one] => self.locals.get(one).copied().unwrap_or(0),
                _ => 0,
            },
            Expr::Lit { .. } | Expr::Opaque { .. } | Expr::NestedFn(_) => 0,
            Expr::Field { base, name, .. } => {
                let mut m = self.eval(base);
                if self.field_secret(base, name) {
                    m |= SECRET;
                }
                m
            }
            Expr::Index { base, index, .. } => self.eval(base) | self.eval(index),
            Expr::Binary { lhs, rhs, .. } => self.eval(lhs) | self.eval(rhs),
            Expr::Assign { lhs, rhs, .. } => {
                let m = self.eval(rhs);
                if let Expr::Path { segs, .. } = lhs.as_ref() {
                    if let [one] = segs.as_slice() {
                        *self.locals.entry(one.clone()).or_insert(0) |= m;
                    }
                }
                let _ = self.eval(lhs);
                0
            }
            Expr::Let {
                bindings,
                ty,
                init,
                else_block,
                ..
            } => {
                let mut m = init.as_ref().map_or(0, |i| self.eval(i));
                if ty
                    .as_deref()
                    .is_some_and(|t| ty_secret(t, self.secret_names))
                {
                    m |= SECRET;
                }
                self.bind(bindings, m);
                if let Some(e) = else_block {
                    let _ = self.eval(e);
                }
                0
            }
            Expr::Block { stmts, .. } => {
                let mut last = 0;
                for s in stmts {
                    last = self.eval(s);
                }
                last
            }
            Expr::If {
                cond,
                bindings,
                then_block,
                else_block,
                ..
            } => {
                let cm = self.eval(cond);
                self.bind(bindings, cm);
                let mut m = self.eval(then_block);
                if let Some(e) = else_block {
                    m |= self.eval(e);
                }
                m
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let sm = self.eval(scrutinee);
                let mut m = 0;
                for arm in arms {
                    self.bind(&arm.bindings, sm);
                    m |= self.eval(&arm.body);
                }
                m
            }
            Expr::For {
                bindings,
                iter,
                body,
                ..
            } => {
                let im = self.eval(iter);
                self.bind(bindings, im);
                // Twice: taint assigned late in the body reaches uses
                // earlier in the next iteration.
                let _ = self.eval(body);
                let _ = self.eval(body);
                0
            }
            Expr::Loop {
                cond,
                bindings,
                body,
                ..
            } => {
                if let Some(c) = cond {
                    let cm = self.eval(c);
                    self.bind(bindings, cm);
                }
                let _ = self.eval(body);
                let _ = self.eval(body);
                0
            }
            Expr::Closure { body, .. } => self.eval(body),
            Expr::Range { lo, hi, .. } => {
                lo.as_ref().map_or(0, |l| self.eval(l)) | hi.as_ref().map_or(0, |h| self.eval(h))
            }
            Expr::Cast { expr, ty, .. } => {
                let mut m = self.eval(expr);
                if ty_secret(ty, self.secret_names) {
                    m |= SECRET;
                }
                m
            }
            Expr::StructLit { segs, fields, .. } => {
                let mut m = 0;
                for (_, fe) in fields {
                    m |= self.eval(fe);
                }
                // `Self { .. }` inside an impl names the owner type.
                let head = segs.last().map(|s| {
                    if s == "Self" {
                        self.owner.as_deref().unwrap_or(s)
                    } else {
                        s.as_str()
                    }
                });
                if head.is_some_and(|s| self.secret_names.contains(s)) {
                    m |= SECRET;
                } else if head.is_some_and(|s| self.ws.struct_fields.contains_key(s)) {
                    // A known non-secret struct *boxes* any secret it is
                    // built from: the container itself is not hot, and
                    // reading the secret back out re-taints through the
                    // field's declared type. Without this, every
                    // `CloudUser`/`CloudServer`-style principal poisons
                    // the whole program.
                    m &= !SECRET;
                }
                m
            }
            Expr::Group { children, .. } => {
                let mut m = 0;
                for c in children {
                    m |= self.eval(c);
                }
                m
            }
            Expr::MacroCall { name, args, line } => {
                let masks: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
                let mut all = masks.iter().fold(0, |a, m| a | m);
                if FORMAT_MACROS.contains(&name.as_str()) {
                    // Inline captures — `format!("{v}")` — never surface
                    // `v` as a token, so mine the string literals too.
                    for a in args {
                        if let Expr::Lit { text, .. } = a {
                            for name in inline_captures(text) {
                                if let Some(m) = self.locals.get(&name) {
                                    all |= m;
                                }
                            }
                        }
                    }
                    self.sink(all, *line, &format!("`{name}!` (format sink)"));
                    0
                } else {
                    all
                }
            }
            Expr::Call { callee, args, line } => {
                let masks: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
                match callee.as_ref() {
                    Expr::Path { segs, .. } => {
                        let targets = self.ws.resolve_call(segs, self.owner.as_deref());
                        let name = segs.last().cloned().unwrap_or_default();
                        let mut m = self.apply_summary(&targets, &masks, *line, &name);
                        if targets.is_empty()
                            && segs
                                .iter()
                                .rev()
                                .nth(1)
                                .is_some_and(|t| self.secret_names.contains(t))
                        {
                            // `UserKey::clone(&k)`-style unresolved
                            // associated call on a secret type.
                            m |= SECRET;
                        }
                        m
                    }
                    other => {
                        let mut m = self.eval(other);
                        for mk in &masks {
                            m |= mk;
                        }
                        m
                    }
                }
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                let recv_mask = self.eval(recv);
                let masks: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
                if WIRE_SINKS.contains(&name.as_str()) {
                    let mut sunk = masks.iter().fold(0, |a, m| a | m);
                    if RECV_SINKS.contains(&name.as_str()) {
                        sunk |= recv_mask;
                    }
                    self.sink(sunk, *line, &format!("wire-encode sink `.{name}(…)`"));
                }
                let recv_ty = self.typer.infer(recv);
                let targets = self.ws.resolve_method(recv_ty.as_deref(), name, args.len());
                // Align receiver as param 0.
                let mut aligned = Vec::with_capacity(masks.len() + 1);
                aligned.push(recv_mask);
                aligned.extend(masks.iter().copied());
                self.apply_summary(&targets, &aligned, *line, name)
            }
        }
    }
}

/// Extracts inline-captured identifiers from a format string literal:
/// `"key {sk} {n:02x}"` → `["sk", "n"]`. `{{` escapes are skipped.
fn inline_captures(lit: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = lit.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '{' {
            continue;
        }
        if chars.peek() == Some(&'{') {
            chars.next();
            continue;
        }
        let mut name = String::new();
        for c in chars.by_ref() {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
            } else {
                break;
            }
        }
        if !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            out.push(name);
        }
    }
    out
}

pub(crate) fn qualified(f: &FnNode, fallback: &str) -> String {
    match &f.owner {
        Some(o) => format!("{o}::{}", f.name),
        None if f.name.is_empty() => fallback.to_string(),
        None => f.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;
    use crate::rules::lint_files;

    fn lint(src: &str) -> Vec<(u32, String)> {
        let r = lint_files(
            &[("crates/core/src/t.rs".to_string(), src.to_string())],
            false,
        );
        r.findings
            .iter()
            .filter(|f| f.rule == RULE_TAINT)
            .map(|f| (f.line, f.message.clone()))
            .collect()
    }

    const SECRET_DEF: &str = "// lint: secret\npub struct UserKey { sk: u64 }\n\
                              impl Drop for UserKey { fn drop(&mut self) {} }\n";

    #[test]
    fn laundered_format_leak_is_caught() {
        let src = format!(
            "{SECRET_DEF}\
             impl UserKey {{ pub fn sk(&self) -> u64 {{ self.sk }} }}\n\
             fn leak(k: &UserKey) -> String {{\n\
                 let x = k.sk();\n\
                 render(x)\n\
             }}\n\
             fn render(v: u64) -> String {{ format!(\"{{v}}\") }}\n"
        );
        let hits = lint(&src);
        assert!(
            hits.iter().any(|(_, m)| m.contains("format")),
            "expected a taint finding, got {hits:?}"
        );
    }

    #[test]
    fn wire_encode_of_secret_field_is_caught() {
        let src = format!(
            "{SECRET_DEF}\
             struct W;\n\
             impl W {{ fn put_u64(&mut self, _v: u64) {{}} }}\n\
             fn emit(w: &mut W, k: &UserKey) {{ w.put_u64(k.sk); }}\n"
        );
        let hits = lint(&src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].1.contains("wire-encode"), "{hits:?}");
    }

    #[test]
    fn derived_public_values_are_not_tainted() {
        // A value returned by a non-secret fn fed by nothing secret.
        let src = format!(
            "{SECRET_DEF}\
             fn public_len(data: &[u8]) -> usize {{ data.len() }}\n\
             fn report(data: &[u8]) -> String {{ format!(\"{{}}\", public_len(data)) }}\n"
        );
        assert!(lint(&src).is_empty());
    }

    #[test]
    fn allow_annotation_silences_taint() {
        let src = format!(
            "{SECRET_DEF}\
             fn show(k: &UserKey) -> String {{\n\
                 // lint: allow(taint, reason=redacted debug prints no key bits)\n\
                 format!(\"{{}}\", k.sk)\n\
             }}\n"
        );
        assert!(lint(&src).is_empty());
    }

    #[test]
    fn word_boundary_containment() {
        assert!(contains_word("Option<UserKey>", "UserKey"));
        assert!(contains_word("&mut UserKey", "UserKey"));
        assert!(!contains_word("UserKeyring", "UserKey"));
    }

    #[test]
    fn summaries_converge_on_mutual_recursion() {
        let src = "fn a(x: u64) -> u64 { b(x) }\nfn b(x: u64) -> u64 { a(x) }";
        let ws = Workspace::build(vec![(
            "crates/core/src/r.rs".to_string(),
            parse(&lex(src).0),
        )]);
        let mut report = Report::default();
        let mut secrets = HashSet::new();
        secrets.insert("UserKey".to_string());
        let typers: Vec<Typer<'_>> = ws.fns.iter().map(|f| Typer::for_fn(&ws, f)).collect();
        check_taint(&ws, &typers, &HashMap::new(), &secrets, false, &mut report);
        assert!(report.findings.is_empty());
    }
}
