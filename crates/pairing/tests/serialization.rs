//! Serialization and scalar-multiplication equivalence tests for the
//! pairing crate's public API.

use seccloud_hash::HmacDrbg;
use seccloud_pairing::{
    hash_to_g1, hash_to_g2, pairing, CurveParams, Fr, G1Affine, G2Affine, Gt, Point, G1, G2,
};

/// Textbook left-to-right double-and-add — the obviously-correct oracle the
/// windowed (wNAF/GLV) production paths are compared against.
fn naive_mul<C: CurveParams>(p: &Point<C>, scalar: &[u64]) -> Point<C> {
    let mut acc = Point::<C>::identity();
    for i in (0..scalar.len() * 64).rev() {
        acc = acc.double();
        if (scalar[i / 64] >> (i % 64)) & 1 == 1 {
            acc = acc.add(p);
        }
    }
    acc
}

#[test]
fn g1_compression_round_trips() {
    for i in 0..10u32 {
        let p = hash_to_g1(&i.to_be_bytes()).to_affine();
        let bytes = p.to_compressed();
        assert_eq!(G1Affine::from_compressed(&bytes), Some(p), "sample {i}");
    }
    // Identity.
    let inf = G1Affine::identity();
    assert_eq!(G1Affine::from_compressed(&inf.to_compressed()), Some(inf));
    // Negation flips exactly the parity bit.
    let p = hash_to_g1(b"neg").to_affine();
    let n = p.neg();
    let (a, b) = (p.to_compressed(), n.to_compressed());
    assert_eq!(a[1..], b[1..]);
    assert_eq!(a[0] ^ b[0], 0x40);
}

#[test]
fn g1_compression_rejects_garbage() {
    // x not on the curve (x = 4 gives y² = 67, a non-residue? — find one).
    let mut rejected = 0;
    for v in 0u8..20 {
        let mut bytes = [0u8; 32];
        bytes[31] = v;
        if G1Affine::from_compressed(&bytes).is_none() {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "some small x must be off-curve");
    // Non-canonical infinity (extra bits set).
    let mut bad_inf = [0u8; 32];
    bad_inf[0] = 0xc0;
    assert_eq!(G1Affine::from_compressed(&bad_inf), None);
    let mut bad_inf2 = [0u8; 32];
    bad_inf2[0] = 0x80;
    bad_inf2[31] = 1;
    assert_eq!(G1Affine::from_compressed(&bad_inf2), None);
    // Non-canonical x (≥ p).
    let too_big = [0x3f; 32];
    assert_eq!(G1Affine::from_compressed(&too_big), None);
}

#[test]
fn g2_compression_round_trips_and_subgroup_checks() {
    for i in 0..5u32 {
        let q = hash_to_g2(&i.to_be_bytes()).to_affine();
        let bytes = q.to_compressed();
        assert_eq!(G2Affine::from_compressed(&bytes), Some(q), "sample {i}");
    }
    let inf = G2Affine::identity();
    assert_eq!(G2Affine::from_compressed(&inf.to_compressed()), Some(inf));
    // Generator round-trips.
    let g = G2::generator().to_affine();
    assert_eq!(G2Affine::from_compressed(&g.to_compressed()), Some(g));
}

#[test]
fn g2_compression_rejects_non_subgroup_points() {
    // Construct a twist point NOT in the r-subgroup (skip cofactor
    // clearing) and check its encoding is rejected.
    use seccloud_pairing::{CurveParams, FieldElement, Fp2, G2Params};
    for ctr in 0u32..30 {
        let x = Fp2::from_hash(b"raw-twist", &ctr.to_be_bytes());
        let y2 = x.square().mul(&x).add(&G2Params::coeff_b());
        if let Some(y) = y2.sqrt() {
            let raw = G2Affine::from_xy(x, y).expect("on twist");
            if G2::from(raw).is_torsion_free() {
                continue; // astronomically unlikely, but skip
            }
            let encoded = raw.to_compressed();
            assert_eq!(
                G2Affine::from_compressed(&encoded),
                None,
                "non-subgroup point must be rejected"
            );
            return;
        }
    }
    panic!("no raw twist point found in 30 tries");
}

#[test]
fn gt_bytes_round_trip() {
    let e = pairing(
        &hash_to_g1(b"gt-ser").to_affine(),
        &hash_to_g2(b"gt-ser").to_affine(),
    );
    let bytes = e.to_bytes();
    assert_eq!(Gt::from_bytes(&bytes), Some(e));
    assert_eq!(Gt::from_bytes(&bytes[..100]), None, "wrong length");
    // Non-canonical coefficient (all-ones block ≥ p).
    let mut bad = bytes.clone();
    for b in bad[..32].iter_mut() {
        *b = 0xff;
    }
    assert_eq!(Gt::from_bytes(&bad), None);
    // Identity round-trips.
    assert_eq!(Gt::from_bytes(&Gt::one().to_bytes()), Some(Gt::one()));
}

#[test]
fn wnaf_equals_double_and_add_g1() {
    let mut d = HmacDrbg::new(b"ser-wnaf-g1");
    let p = hash_to_g1(b"wnaf-base");
    for _ in 0..16 {
        let limbs: [u64; 4] = std::array::from_fn(|_| d.next_u64());
        assert_eq!(naive_mul(&p, &limbs), p.mul_limbs_wnaf(&limbs));
    }
}

#[test]
fn wnaf_equals_double_and_add_g2() {
    let mut d = HmacDrbg::new(b"ser-wnaf-g2");
    let q = G2::generator();
    for _ in 0..16 {
        let k = d.next_u64();
        assert_eq!(
            naive_mul(&q, &[k, 0, k, 1]),
            q.mul_limbs_wnaf(&[k, 0, k, 1])
        );
    }
}

#[test]
fn wnaf_edge_scalars() {
    let mut d = HmacDrbg::new(b"ser-wnaf-edge");
    let p = G1::generator();
    for _ in 0..16 {
        // Powers of two and neighbours exercise NAF carries.
        let shift = d.next_below(255) as usize;
        let one = seccloud_bigint::U256::ONE.shl(shift);
        assert_eq!(p.mul_u256(&one), p.mul_limbs_wnaf(one.limbs()));
        let minus = one.wrapping_sub(&seccloud_bigint::U256::ONE);
        assert_eq!(p.mul_u256(&minus), p.mul_limbs_wnaf(minus.limbs()));
    }
}

#[test]
fn compression_respects_scalar_structure() {
    let mut d = HmacDrbg::new(b"ser-compress");
    for _ in 0..16 {
        let k = 1 + d.next_below(999);
        let p = G1::generator().mul_fr(&Fr::from_u64(k)).to_affine();
        let round = G1Affine::from_compressed(&p.to_compressed()).unwrap();
        assert_eq!(round, p);
    }
}

#[test]
fn wnaf_zero_and_identity() {
    let p = G1::generator();
    assert!(p.mul_limbs_wnaf(&[0, 0, 0, 0]).is_identity());
    assert!(G1::identity().mul_limbs_wnaf(&[123]).is_identity());
    assert_eq!(p.mul_limbs_wnaf(&[1]), p);
}

#[test]
fn double_scalar_mul_matches_separate() {
    use seccloud_bigint::U256;
    let mut d = HmacDrbg::new(b"ser-shamir");
    let p = G1::generator();
    let q = hash_to_g1(b"shamir-q");
    for _ in 0..12 {
        let (ua, ub) = (U256::from_u64(d.next_u64()), U256::from_u64(d.next_u64()));
        let joint = G1::double_scalar_mul(&p, &ua, &q, &ub);
        let separate = p.mul_u256(&ua).add(&q.mul_u256(&ub));
        assert_eq!(joint, separate);
    }
}

#[test]
fn double_scalar_mul_edges() {
    use seccloud_bigint::U256;
    let p = G1::generator();
    let q = hash_to_g1(b"shamir-edge");
    // Zero scalars.
    assert!(G1::double_scalar_mul(&p, &U256::ZERO, &q, &U256::ZERO).is_identity());
    assert_eq!(G1::double_scalar_mul(&p, &U256::ONE, &q, &U256::ZERO), p);
    assert_eq!(G1::double_scalar_mul(&p, &U256::ZERO, &q, &U256::ONE), q);
    // Same point both slots: [a]P + [b]P = [a+b]P.
    let a = U256::from_u64(7);
    let b = U256::from_u64(9);
    assert_eq!(
        G1::double_scalar_mul(&p, &a, &p, &b),
        p.mul_u256(&U256::from_u64(16))
    );
    // Full-width scalars.
    let big = seccloud_pairing::Fr::hash(b"big").to_u256();
    assert_eq!(
        G1::double_scalar_mul(&p, &big, &q, &big),
        p.mul_u256(&big).add(&q.mul_u256(&big))
    );
}
