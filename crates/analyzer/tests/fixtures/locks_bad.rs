//! Fixture: inconsistent lock order across functions.
//!
//! `forward` takes `a` then (through the `with_b` helper) `b`; `backward`
//! takes `b` then `a`. Run concurrently the two interleave into a classic
//! AB/BA deadlock — the lint must stitch the cross-function edge
//! `Pair.a → Pair.b` (via the call) into a cycle with the direct
//! `Pair.b → Pair.a` edge.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<Vec<u8>>,
    b: Mutex<Vec<u8>>,
}

impl Pair {
    pub fn forward(&self) -> usize {
        let Ok(ga) = self.a.lock() else { return 0 };
        self.with_b(ga.len())
    }

    fn with_b(&self, base: usize) -> usize {
        let Ok(gb) = self.b.lock() else { return base };
        base.max(gb.len())
    }

    pub fn backward(&self) -> usize {
        let Ok(gb) = self.b.lock() else { return 0 };
        let Ok(ga) = self.a.lock() else { return 0 };
        ga.len().max(gb.len())
    }
}
