//! Tier-2 resilience: whole-audit recovery with adaptive escalation.
//!
//! The transport (tier 1) already heals structural damage inside single
//! RPCs. This module handles what survives it: audit rounds that complete
//! but verify as invalid. The driver must then answer the central
//! question — *is the server lying, or was the channel unlucky?* — without
//! ever letting a flaky network acquit a cheater or convict an honest
//! server.
//!
//! The classification is deliberately one-sided. An invalid round counts
//! as **byzantine evidence** only when the failure is cryptographically
//! pinned to the server: the commitment's root signature verified, the
//! response echoed this round's nonce, the commitment's published results
//! rebuild the signed root ([`commitment_binds_results`]), and every
//! failing item is a [`WrongResult`](AuditFailure::WrongResult) whose
//! claimed value equals the committed one. Then the server *signed* a root
//! binding a wrong answer — no channel fault can fabricate that chain.
//! Anything weaker (a stale nonce, a damaged commitment, a signature that
//! no longer verifies) is treated as suspicion, not proof: the driver
//! escalates the challenge per Section VII's `Pr[FCS] = base^t` bound and
//! re-runs the round against a *freshly dispatched* commitment.

use seccloud_cloudsim::agency::{AuditVerdict, DesignatedAgency, StorageAuditVerdict};
use seccloud_cloudsim::rpc::WireTransport;
use seccloud_core::computation::{leaf_bytes, AuditFailure, Commitment, ComputationRequest};
use seccloud_core::storage::SignedBlock;
use seccloud_core::wire::WireMessage;
use seccloud_core::CloudUser;
use seccloud_hash::ct_eq;
use seccloud_merkle::MerkleTree;

use crate::escalation::escalate_sample_size;
use crate::transport::{Op, ResilientTransport};

/// What one resilient audit cost and discovered along the way.
#[must_use = "recovery stats record escalations and byzantine evidence"]
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// `COMPUTE` dispatches issued (initial + re-dispatches).
    pub dispatch_attempts: u64,
    /// Challenge rounds run to completion (verdict or transport error).
    pub audit_rounds: u64,
    /// Rounds lost to transient faults the transport could not mask.
    pub transient_faults: u64,
    /// Rounds that produced cryptographically pinned misbehaviour.
    pub byzantine_evidence: u64,
    /// Challenge escalations performed.
    pub escalations: u64,
    /// The sample size of the last round that ran.
    pub final_sample_size: usize,
    /// Virtual time consumed, including backoffs and latency.
    pub virtual_elapsed_ms: u64,
}

/// The terminal state of one resilient computation audit.
#[must_use = "an unexamined resolution silently drops detected cheating"]
#[derive(Clone, Debug)]
pub enum AuditResolution {
    /// A challenge round verified end to end: the job is correct (up to
    /// the sampling bound at `stats.final_sample_size`).
    Clean {
        /// The passing round's verdict.
        verdict: AuditVerdict,
        /// What recovery cost to get here.
        stats: RecoveryStats,
    },
    /// The server produced cryptographically pinned wrong results.
    Detected {
        /// The convicting round's verdict.
        verdict: AuditVerdict,
        /// What recovery cost to get here.
        stats: RecoveryStats,
    },
    /// Retries, rounds or budget ran out without either outcome; the
    /// server is unreachable or the channel too damaged to decide.
    Unresolved {
        /// What stopped the audit.
        reason: String,
        /// What recovery cost before giving up.
        stats: RecoveryStats,
    },
}

impl AuditResolution {
    /// Whether the audit ended with a verified-correct round.
    pub fn is_clean(&self) -> bool {
        matches!(self, AuditResolution::Clean { .. })
    }

    /// Whether the audit ended by convicting the server.
    pub fn is_detected(&self) -> bool {
        matches!(self, AuditResolution::Detected { .. })
    }

    /// The recovery stats, whatever the outcome.
    pub fn stats(&self) -> &RecoveryStats {
        match self {
            AuditResolution::Clean { stats, .. }
            | AuditResolution::Detected { stats, .. }
            | AuditResolution::Unresolved { stats, .. } => stats,
        }
    }
}

/// The terminal state of one resilient storage audit.
#[must_use = "an unexamined resolution silently drops detected data loss"]
#[derive(Clone, Debug)]
pub struct StorageResolution {
    /// The per-position verdict after retries.
    pub verdict: StorageAuditVerdict,
    /// What recovery cost to get here.
    pub stats: RecoveryStats,
}

/// Whether the commitment's published results `Y` actually rebuild its
/// signed Merkle root for `request`'s position vectors.
///
/// This is the keystone of byzantine classification: when it holds, the
/// root signature covers every `yᵢ`, so a challenged item whose claimed
/// value equals `results[i]` but computes wrong is the *server's* signed
/// lie. When it fails, the commitment bytes were damaged in transit (the
/// signed root belongs to some other result vector) and nothing can be
/// pinned on the server.
pub fn commitment_binds_results(request: &ComputationRequest, commitment: &Commitment) -> bool {
    if commitment.results.is_empty() || commitment.results.len() != request.len() {
        return false;
    }
    let leaves: Vec<Vec<u8>> = commitment
        .results
        .iter()
        .zip(&request.items)
        .enumerate()
        .map(|(i, (&y, item))| leaf_bytes(i, &item.positions, y))
        .collect();
    let rebuilt = MerkleTree::from_data(leaves.iter().map(Vec::as_slice)).root();
    ct_eq(&rebuilt, &commitment.root)
}

/// Whether a detected round is cryptographically pinned to the server (see
/// the module docs for why each conjunct is load-bearing).
fn is_byzantine_evidence(
    request: &ComputationRequest,
    commitment: &Commitment,
    verdict: &AuditVerdict,
) -> bool {
    let outcome = &verdict.outcome;
    outcome.root_sig_ok
        && outcome.nonce_ok
        && !outcome.failures.is_empty()
        && commitment_binds_results(request, commitment)
        && outcome.failures.iter().all(|(idx, failure)| {
            matches!(
                failure,
                AuditFailure::WrongResult { claimed, .. }
                    if commitment.results.get(*idx) == Some(claimed)
            )
        })
}

/// Runs one computation job to a terminal verdict through a resilient
/// transport: dispatches the request, audits it, and on anything short of
/// a pinned conviction escalates the challenge and retries against a fresh
/// commitment — up to the policy's round and budget limits.
///
/// Pre-existing suspicion ([`ResilientTransport::suspicion`]) from earlier
/// jobs on the same endpoint starts the challenge already escalated.
pub fn run_job_resilient<T: WireTransport>(
    da: &mut DesignatedAgency,
    transport: &mut ResilientTransport<T>,
    owner: &CloudUser,
    request: &ComputationRequest,
    sample_size: usize,
    now: u64,
) -> AuditResolution {
    let mut stats = RecoveryStats::default();
    let start_ms = transport.clock().now_ms();
    let budget_ms = transport.policy().total_budget_ms;
    let max_rounds = transport.policy().max_rounds.max(1);
    // Carry suspicion earned on this endpoint into the opening challenge.
    let mut steps = u32::try_from(transport.suspicion()).unwrap_or(u32::MAX);
    stats.escalations += u64::from(steps.min(1)); // counted once as "opened escalated"
    let mut job: Option<(u64, Commitment, Vec<u8>)> = None;

    let finish = |mut stats: RecoveryStats, now_ms: u64| {
        stats.virtual_elapsed_ms = now_ms.saturating_sub(start_ms);
        stats
    };

    for _round in 0..max_rounds {
        if transport.clock().now_ms().saturating_sub(start_ms) > budget_ms {
            let now_ms = transport.clock().now_ms();
            return AuditResolution::Unresolved {
                reason: "virtual-time budget exhausted".into(),
                stats: finish(stats, now_ms),
            };
        }
        if job.is_none() {
            stats.dispatch_attempts += 1;
            match transport.rpc_compute(owner.identity(), da.identity(), &request.to_wire()) {
                Ok((job_id, bytes)) => {
                    let commitment = match Commitment::from_wire(&bytes) {
                        Ok(c) => c,
                        // The transport validated decodability; a failure
                        // here means the caller's request was unanswerable.
                        Err(e) => {
                            let now_ms = transport.clock().now_ms();
                            return AuditResolution::Unresolved {
                                reason: format!("undecodable commitment: {e}"),
                                stats: finish(stats, now_ms),
                            };
                        }
                    };
                    job = Some((job_id, commitment, bytes));
                }
                Err(e) if e.is_transient() => {
                    stats.transient_faults += 1;
                    continue;
                }
                Err(e) => {
                    let now_ms = transport.clock().now_ms();
                    return AuditResolution::Unresolved {
                        reason: format!("dispatch rejected: {e}"),
                        stats: finish(stats, now_ms),
                    };
                }
            }
        }
        let Some((job_id, commitment, commitment_bytes)) = job.as_ref() else {
            continue; // unreachable: dispatched above, kept for panic-freedom
        };
        let t = escalate_sample_size(sample_size, request.len(), steps);
        stats.final_sample_size = t;
        stats.audit_rounds += 1;
        match da.audit_wire(transport, owner, request, *job_id, commitment_bytes, t, now) {
            Ok(verdict) if !verdict.detected => {
                let now_ms = transport.clock().now_ms();
                return AuditResolution::Clean {
                    verdict,
                    stats: finish(stats, now_ms),
                };
            }
            Ok(verdict) => {
                if is_byzantine_evidence(request, commitment, &verdict) {
                    transport.note_byzantine(Op::Audit);
                    stats.byzantine_evidence += 1;
                    let now_ms = transport.clock().now_ms();
                    return AuditResolution::Detected {
                        verdict,
                        stats: finish(stats, now_ms),
                    };
                }
                // Authenticated-but-unpinnable damage (stale nonce, mangled
                // commitment, bad paths): escalate and start over with a
                // fresh commitment so a corrupted one cannot wedge us.
                steps = steps.saturating_add(1);
                stats.escalations += 1;
                job = None;
            }
            Err(e) if e.is_transient() => {
                stats.transient_faults += 1;
                steps = steps.saturating_add(1);
                stats.escalations += 1;
            }
            Err(e) => {
                let now_ms = transport.clock().now_ms();
                return AuditResolution::Unresolved {
                    reason: format!("audit rejected: {e}"),
                    stats: finish(stats, now_ms),
                };
            }
        }
    }
    let now_ms = transport.clock().now_ms();
    AuditResolution::Unresolved {
        reason: "challenge rounds exhausted".into(),
        stats: finish(stats, now_ms),
    }
}

/// Sampled storage audit through a resilient transport: each challenged
/// position is retried (a fresh retrieve per round) until the block
/// verifies or the policy's rounds run out. Damage can only push positions
/// toward `missing`/`invalid` — a flaky channel never yields a false pass,
/// and a burst-faulty one never yields a false alarm.
pub fn storage_audit_resilient<T: WireTransport>(
    da: &mut DesignatedAgency,
    transport: &mut ResilientTransport<T>,
    owner: &CloudUser,
    n_blocks: u64,
    sample_size: usize,
) -> StorageResolution {
    let mut stats = RecoveryStats::default();
    let start_ms = transport.clock().now_ms();
    let max_rounds = transport.policy().max_rounds.max(1);
    let n = usize::try_from(n_blocks).unwrap_or(usize::MAX);
    let challenge = da.sample_challenge(n, sample_size.min(n));
    stats.final_sample_size = challenge.len();
    let mut missing = Vec::new();
    let mut invalid = Vec::new();
    let mut sampled = Vec::new();
    for &idx in &challenge.indices {
        let pos = idx as u64;
        sampled.push(pos);
        enum Last {
            Missing,
            Invalid,
        }
        let mut last = Last::Missing;
        let mut ok = false;
        for round in 0..max_rounds {
            if round > 0 {
                stats.transient_faults += 1;
            }
            stats.audit_rounds += 1;
            match transport.rpc_retrieve(owner.identity(), pos) {
                None => last = Last::Missing,
                Some(bytes) => match SignedBlock::from_wire(&bytes) {
                    Err(_) => last = Last::Invalid,
                    Ok(block) => {
                        if block.block().index() == pos
                            && block.verify(da.credential().key(), owner.public())
                        {
                            ok = true;
                            break;
                        }
                        last = Last::Invalid;
                    }
                },
            }
        }
        if !ok {
            match last {
                Last::Missing => missing.push(pos),
                Last::Invalid => invalid.push(pos),
            }
        }
    }
    stats.virtual_elapsed_ms = transport.clock().now_ms().saturating_sub(start_ms);
    StorageResolution {
        verdict: StorageAuditVerdict {
            sampled,
            missing,
            invalid,
        },
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RetryPolicy;
    use seccloud_cloudsim::behavior::Behavior;
    use seccloud_cloudsim::rpc::{encode_store_body, WireServer};
    use seccloud_cloudsim::server::CloudServer;
    use seccloud_core::computation::{ComputeFunction, RequestItem};
    use seccloud_core::storage::DataBlock;
    use seccloud_core::Sio;
    use seccloud_testkit::fault::{Endpoint, FaultKind, FaultyChannel};

    const N_BLOCKS: u64 = 12;

    struct World {
        user: CloudUser,
        da: DesignatedAgency,
        transport: ResilientTransport<FaultyChannel<WireServer>>,
    }

    fn world(behavior: Behavior, seed: u64) -> World {
        let sio = Sio::new(b"driver-tests");
        let user = sio.register("alice");
        let server = WireServer::new(CloudServer::new(&sio, "cs", behavior, b"srv"));
        let da = DesignatedAgency::new(&sio, "da", b"agency");
        let channel = FaultyChannel::new(server, seed, 0.0);
        let mut transport =
            ResilientTransport::new(channel, RetryPolicy::default(), &seed.to_be_bytes());
        let blocks: Vec<DataBlock> = (0..N_BLOCKS)
            .map(|i| DataBlock::from_values(i, &[i * 7, i + 1]))
            .collect();
        let signed = user.sign_blocks(
            &blocks,
            &[transport.inner().inner().inner().public(), da.public()],
        );
        let body = encode_store_body(&signed);
        assert_eq!(
            transport.rpc_store(user.identity(), &body).unwrap(),
            N_BLOCKS
        );
        World {
            user,
            da,
            transport,
        }
    }

    fn request() -> ComputationRequest {
        ComputationRequest::new(
            (0..6u64)
                .map(|i| RequestItem {
                    function: ComputeFunction::WeightedSum(vec![3, 5]),
                    positions: vec![i, (i + 1) % N_BLOCKS],
                })
                .collect(),
        )
    }

    #[test]
    fn honest_server_resolves_clean_first_round() {
        let mut w = world(Behavior::Honest, 1);
        let res = run_job_resilient(&mut w.da, &mut w.transport, &w.user, &request(), 3, 0);
        let AuditResolution::Clean { stats, .. } = res else {
            panic!("expected Clean, got {res:?}");
        };
        assert_eq!(stats.audit_rounds, 1);
        assert_eq!(stats.escalations, 0);
        assert_eq!(stats.final_sample_size, 3);
        assert_eq!(w.transport.suspicion(), 0);
    }

    #[test]
    fn transient_burst_is_masked_and_escalates() {
        let mut w = world(Behavior::Honest, 2);
        w.transport
            .inner_mut()
            .set_forced_burst(Endpoint::Audit, FaultKind::Truncate, 2);
        let res = run_job_resilient(&mut w.da, &mut w.transport, &w.user, &request(), 2, 0);
        assert!(res.is_clean(), "burst must be masked: {res:?}");
        let stats = res.stats();
        assert!(
            w.transport.stats(Op::Audit).transient_faults >= 2,
            "the burst was actually injected"
        );
        assert_eq!(
            stats.final_sample_size, 2,
            "tier-1 healed it within round 1"
        );
        assert_eq!(w.transport.suspicion(), 0, "channel noise is not suspicion");
    }

    #[test]
    fn cheater_is_detected_with_byzantine_evidence() {
        let mut w = world(
            Behavior::ComputationCheater {
                csc: 0.0,
                guess_range: None,
            },
            3,
        );
        let res = run_job_resilient(&mut w.da, &mut w.transport, &w.user, &request(), 6, 0);
        let AuditResolution::Detected { verdict, stats } = res else {
            panic!("expected Detected, got {res:?}");
        };
        assert!(verdict.detected);
        assert_eq!(stats.byzantine_evidence, 1);
        assert_eq!(w.transport.suspicion(), 1, "conviction raises suspicion");
        assert!(
            !w.transport.breaker_is_open(),
            "convicted servers stay reachable"
        );
    }

    #[test]
    fn partial_cheater_is_cornered_by_escalation() {
        // CSC = 0.5: a 1-sample challenge often misses, but any invalid
        // round escalates toward the full audit, which cannot miss.
        let mut w = world(
            Behavior::ComputationCheater {
                csc: 0.5,
                guess_range: None,
            },
            4,
        );
        let res = run_job_resilient(&mut w.da, &mut w.transport, &w.user, &request(), 1, 0);
        match res {
            AuditResolution::Detected { ref stats, .. } => {
                assert!(stats.byzantine_evidence >= 1);
            }
            AuditResolution::Clean { ref stats, .. } => {
                // A 50% cheater can pass a small sample honestly; that is
                // the sampling bound, not a driver bug. It must not have
                // taken byzantine marks to get there.
                assert_eq!(stats.byzantine_evidence, 0);
            }
            AuditResolution::Unresolved { .. } => panic!("reachable server: {res:?}"),
        }
    }

    #[test]
    fn dead_endpoint_resolves_unresolved_not_panic() {
        let mut w = world(Behavior::Honest, 5);
        // Permanent fault: every audit response is truncated, forever.
        w.transport
            .inner_mut()
            .set_forced(Some((Endpoint::Audit, FaultKind::Truncate)));
        let res = run_job_resilient(&mut w.da, &mut w.transport, &w.user, &request(), 2, 0);
        let AuditResolution::Unresolved { stats, .. } = res else {
            panic!("expected Unresolved, got {res:?}");
        };
        assert!(stats.transient_faults >= 1);
        assert!(stats.escalations >= 1, "each lost round escalated");
        assert_eq!(w.transport.suspicion(), 0, "a dead channel convicts nobody");
    }

    #[test]
    fn storage_audit_retries_through_burst() {
        let mut w = world(Behavior::Honest, 6);
        w.transport
            .inner_mut()
            .set_forced_burst(Endpoint::Retrieve, FaultKind::BitFlip, 2);
        let res = storage_audit_resilient(&mut w.da, &mut w.transport, &w.user, N_BLOCKS, 6);
        assert!(res.verdict.is_healthy(), "{res:?}");
        assert_eq!(res.verdict.sampled.len(), 6);
    }

    #[test]
    fn storage_corruption_still_detected_under_retries() {
        use seccloud_cloudsim::behavior::StorageAttack;
        let mut w = world(
            Behavior::StorageCheater {
                ssc: 0.0,
                attack: StorageAttack::Corrupt,
            },
            7,
        );
        let res = storage_audit_resilient(&mut w.da, &mut w.transport, &w.user, N_BLOCKS, 8);
        assert!(!res.verdict.is_healthy());
        assert_eq!(res.verdict.invalid.len(), 8, "every sampled block corrupt");
    }

    #[test]
    fn binds_results_rejects_tampered_commitments() {
        let mut w = world(Behavior::Honest, 8);
        let req = request();
        let (_, bytes) = w
            .transport
            .rpc_compute(w.user.identity(), w.da.identity(), &req.to_wire())
            .unwrap();
        let good = Commitment::from_wire(&bytes).unwrap();
        assert!(commitment_binds_results(&req, &good));
        let mut tampered = good.clone();
        tampered.results[0] ^= 1;
        assert!(
            !commitment_binds_results(&req, &tampered),
            "a flipped result no longer rebuilds the signed root"
        );
        let mut short = good;
        short.results.pop();
        assert!(!commitment_binds_results(&req, &short));
    }

    #[test]
    fn same_seed_same_resolution() {
        let run = || {
            let mut w = world(Behavior::Honest, 9);
            w.transport
                .inner_mut()
                .set_forced_burst(Endpoint::Compute, FaultKind::LengthLie, 1);
            let res = run_job_resilient(&mut w.da, &mut w.transport, &w.user, &request(), 2, 0);
            assert!(res.is_clean(), "{res:?}");
            (
                res.stats().clone(),
                w.transport.clock().now_ms(),
                w.transport.inner().plan().clone(),
            )
        };
        assert_eq!(run(), run());
    }
}
