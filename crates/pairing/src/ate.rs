//! The optimal ate pairing for BN curves.
//!
//! Same interface and target group as the Tate implementation in
//! [`crate::pairing`], but with a Miller loop of length `6x + 2` (≈ 65
//! bits instead of 254) running on the *twist* — point arithmetic in `Fp2`
//! — plus the two standard Frobenius-twisted correction steps:
//!
//! ```text
//! a_opt(P, Q) = ( f_{6x+2,Q}(P) · l_{[6x+2]Q, πQ}(P) · l_{[6x+2]Q+πQ, −π²Q}(P) )^((p¹²−1)/r)
//! ```
//!
//! The twist-Frobenius coefficients `ξ^((p−1)/3)`, `ξ^((p−1)/2)`,
//! `ξ^((p²−1)/3)` are derived at runtime like every other constant in this
//! crate. Correctness is established by the same property suite as the
//! Tate pairing (bilinearity, non-degeneracy, group order) plus mutual
//! consistency tests.

use std::sync::OnceLock;

use seccloud_bigint::ApInt;

use crate::fp::Fp;
use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::g1::G1Affine;
use crate::g2::G2Affine;
use crate::pairing::{final_exponentiation, Gt};
use crate::params;
use crate::traits::FieldElement;

/// The Miller loop length `s = 6x + 2`.
pub(crate) fn loop_count() -> &'static ApInt {
    static S: OnceLock<ApInt> = OnceLock::new();
    S.get_or_init(|| &(&ApInt::from_u64(params::BN_X) * &ApInt::from_u64(6)) + &ApInt::from_u64(2))
}

/// `γ₂ = ξ^((p−1)/3)` and `γ₃ = ξ^((p−1)/2)` — the twist-Frobenius
/// coefficients for `x` and `y` respectively.
fn twist_frobenius_coeffs() -> &'static (Fp2, Fp2) {
    static G: OnceLock<(Fp2, Fp2)> = OnceLock::new();
    G.get_or_init(|| {
        let p_minus_1 = p_minus_one();
        let third = p_minus_1.divrem(&ApInt::from_u64(3)).expect("3 ≠ 0").0;
        let half = p_minus_1.divrem(&ApInt::from_u64(2)).expect("2 ≠ 0").0;
        (
            Fp2::xi().pow_limbs(&third.to_le_limbs()),
            Fp2::xi().pow_limbs(&half.to_le_limbs()),
        )
    })
}

/// `ω = ξ^((p²−1)/3)` — the `x`-coefficient of the squared twist
/// Frobenius (`ξ^((p²−1)/2) = −1` because ξ is a non-square in `Fp2`).
fn twist_frobenius_sq_coeff() -> &'static Fp2 {
    static W: OnceLock<Fp2> = OnceLock::new();
    W.get_or_init(|| {
        let p = params::p_apint();
        let p2_minus_1 = (p * p).checked_sub(&ApInt::one()).expect("p² > 1");
        let third = p2_minus_1.divrem(&ApInt::from_u64(3)).expect("3 ≠ 0").0;
        Fp2::xi().pow_limbs(&third.to_le_limbs())
    })
}

fn p_minus_one() -> ApInt {
    params::p_apint().checked_sub(&ApInt::one()).expect("p > 1")
}

/// The twist Frobenius `π(x, y) = (x̄·γ₂, ȳ·γ₃)` (conjugate = `Fp2`
/// Frobenius), satisfying `ψ(π_tw(Q)) = π(ψ(Q))` for the untwist `ψ`.
pub(crate) fn twist_frobenius(q: (Fp2, Fp2)) -> (Fp2, Fp2) {
    let (g2, g3) = twist_frobenius_coeffs();
    (q.0.conjugate().mul(g2), q.1.conjugate().mul(g3))
}

/// The squared twist Frobenius `π²(x, y) = (x·ω, −y)`.
pub(crate) fn twist_frobenius_sq(q: (Fp2, Fp2)) -> (Fp2, Fp2) {
    (q.0.mul(twist_frobenius_sq_coeff()), q.1.neg())
}

/// Builds the sparse line value `l(P) = y_P + w·(−λ·x_P + (λ·x_T − y_T)·v)`
/// for a line of slope `λ` through the twist point `(x_T, y_T)`, evaluated
/// at `P = (x_P, y_P) ∈ G1` — returned as the three populated `w`-basis
/// slots `(a, b, c)` consumed by [`Fp12::mul_by_014`].
fn line_value(lambda: &Fp2, x_t: &Fp2, y_t: &Fp2, x_p: &Fp, y_p: &Fp) -> (Fp2, Fp2, Fp2) {
    let a = Fp2::from_fp(*y_p);
    let b = lambda.scale(x_p).neg();
    let c = lambda.mul(x_t).sub(y_t);
    (a, b, c)
}

/// Affine twist-point state for the Miller loop. Steps return the sparse
/// line coefficients, or `None` for verticals and spent states (a line
/// value of 1, which the accumulator simply skips).
struct TwistMiller {
    t: Option<(Fp2, Fp2)>,
}

impl TwistMiller {
    /// Tangent step: line at `T` evaluated at `P`, then `T ← 2T`.
    fn double_step(&mut self, x_p: &Fp, y_p: &Fp) -> Option<(Fp2, Fp2, Fp2)> {
        let (x, y) = self.t?;
        if y.is_zero() {
            self.t = None;
            return None; // vertical: killed by final exponentiation
        }
        let lambda = x
            .square()
            .scale(&Fp::from_u64(3))
            .mul(&y.double().inverse_vartime().expect("y ≠ 0"));
        let line = line_value(&lambda, &x, &y, x_p, y_p);
        let x3 = lambda.square().sub(&x.double());
        let y3 = lambda.mul(&x.sub(&x3)).sub(&y);
        self.t = Some((x3, y3));
        Some(line)
    }

    /// Chord step: line through `T` and `r`, then `T ← T + r`.
    fn add_step(&mut self, r: (Fp2, Fp2), x_p: &Fp, y_p: &Fp) -> Option<(Fp2, Fp2, Fp2)> {
        let Some((x1, y1)) = self.t else {
            self.t = Some(r);
            return None;
        };
        let (x2, y2) = r;
        if x1 == x2 {
            if y1 == y2 {
                return self.double_step(x_p, y_p);
            }
            self.t = None;
            return None; // vertical
        }
        let lambda = y2
            .sub(&y1)
            .mul(&x2.sub(&x1).inverse_vartime().expect("x₂ ≠ x₁"));
        let line = line_value(&lambda, &x1, &y1, x_p, y_p);
        let x3 = lambda.square().sub(&x1).sub(&x2);
        let y3 = lambda.mul(&x1.sub(&x3)).sub(&y1);
        self.t = Some((x3, y3));
        Some(line)
    }
}

/// Folds a sparse line into the Miller accumulator (13 `Fp2` muls instead
/// of a full 18-mul `Fp12` multiplication; `None` means a line value of 1).
fn absorb_line(f: &Fp12, line: Option<(Fp2, Fp2, Fp2)>) -> Fp12 {
    match line {
        Some((a, b, c)) => f.mul_by_014(&a, &b, &c),
        None => *f,
    }
}

/// The optimal-ate Miller function (no final exponentiation).
fn miller_loop_ate(p: &G1Affine, q: &G2Affine) -> Fp12 {
    let (x_p, y_p) = (p.x(), p.y());
    let q_aff = (q.x(), q.y());
    let s = loop_count();
    let bits = s.bits();

    let mut f = Fp12::one();
    let mut state = TwistMiller { t: Some(q_aff) };
    for i in (0..bits - 1).rev() {
        f = f.square();
        f = absorb_line(&f, state.double_step(&x_p, &y_p));
        if s.bit(i) {
            f = absorb_line(&f, state.add_step(q_aff, &x_p, &y_p));
        }
    }

    // Correction steps with π(Q) and −π²(Q).
    let q1 = twist_frobenius(q_aff);
    let q2 = twist_frobenius_sq(q_aff);
    let minus_q2 = (q2.0, q2.1.neg());
    f = absorb_line(&f, state.add_step(q1, &x_p, &y_p));
    f = absorb_line(&f, state.add_step(minus_q2, &x_p, &y_p));
    f
}

/// Computes the reduced optimal ate pairing `ê(P, Q)`.
///
/// Identical bilinearity/non-degeneracy contract as [`crate::pairing`]'s
/// Tate implementation with a ~4× shorter Miller loop; the two generate the
/// same `GT` but are *different* pairings (they differ by a fixed exponent),
/// so a deployment must use one of them consistently — this workspace uses
/// the ate pairing everywhere via [`crate::pairing()`].
///
/// # Examples
///
/// ```
/// use seccloud_pairing::{pairing_ate, Fr, G1, G2};
/// let e = pairing_ate(&G1::generator().to_affine(), &G2::generator().to_affine());
/// let e2 = pairing_ate(
///     &G1::generator().double().to_affine(),
///     &G2::generator().to_affine(),
/// );
/// assert_eq!(e2, e.mul(&e));
/// ```
pub fn pairing_ate(p: &G1Affine, q: &G2Affine) -> Gt {
    if p.is_identity() || q.is_identity() {
        return Gt::one();
    }
    Gt::from_unchecked_fp12(final_exponentiation(&miller_loop_ate(p, q)))
}

/// Product of ate pairings sharing one final exponentiation.
pub fn multi_pairing_ate(pairs: &[(G1Affine, G2Affine)]) -> Gt {
    let mut acc = Fp12::one();
    let mut any = false;
    for (p, q) in pairs {
        if p.is_identity() || q.is_identity() {
            continue;
        }
        acc = acc.mul(&miller_loop_ate(p, q));
        any = true;
    }
    if !any {
        return Gt::one();
    }
    Gt::from_unchecked_fp12(final_exponentiation(&acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fr::Fr;
    use crate::g1::{hash_to_g1, G1};
    use crate::g2::{hash_to_g2, G2};

    #[test]
    fn non_degenerate_and_order_r() {
        let e = pairing_ate(&G1::generator().to_affine(), &G2::generator().to_affine());
        assert!(!e.is_one(), "pairing of generators is nontrivial");
        let r_minus_1 = Fr::zero().sub(&Fr::one());
        assert_eq!(e.pow(&r_minus_1).mul(&e), Gt::one(), "e^r = 1");
    }

    #[test]
    fn bilinearity_both_arguments() {
        let p = hash_to_g1(b"ate-p");
        let q = hash_to_g2(b"ate-q");
        let a = Fr::hash(b"ate-a");
        let b = Fr::hash(b"ate-b");
        let base = pairing_ate(&p.to_affine(), &q.to_affine());
        assert_eq!(
            pairing_ate(&p.mul_fr(&a).to_affine(), &q.mul_fr(&b).to_affine()),
            base.pow(&a.mul(&b))
        );
        assert_eq!(
            pairing_ate(&p.mul_fr(&a).to_affine(), &q.to_affine()),
            pairing_ate(&p.to_affine(), &q.mul_fr(&a).to_affine()),
            "scalar slides between arguments"
        );
    }

    #[test]
    fn additivity() {
        let p1 = hash_to_g1(b"ate-add-1");
        let p2 = hash_to_g1(b"ate-add-2");
        let q = hash_to_g2(b"ate-add-q").to_affine();
        assert_eq!(
            pairing_ate(&p1.add(&p2).to_affine(), &q),
            pairing_ate(&p1.to_affine(), &q).mul(&pairing_ate(&p2.to_affine(), &q))
        );
        let q2 = hash_to_g2(b"ate-add-q2");
        let q_sum = hash_to_g2(b"ate-add-q").add(&q2).to_affine();
        assert_eq!(
            pairing_ate(&p1.to_affine(), &q_sum),
            pairing_ate(&p1.to_affine(), &q).mul(&pairing_ate(&p1.to_affine(), &q2.to_affine()))
        );
    }

    #[test]
    fn identity_inputs_give_one() {
        let p = G1::generator().to_affine();
        let q = G2::generator().to_affine();
        assert!(pairing_ate(&G1Affine::identity(), &q).is_one());
        assert!(pairing_ate(&p, &G2Affine::identity()).is_one());
    }

    #[test]
    fn multi_pairing_matches_product() {
        let pairs: Vec<_> = (0..3u32)
            .map(|i| {
                (
                    hash_to_g1(format!("mpa-{i}").as_bytes()).to_affine(),
                    hash_to_g2(format!("mpq-{i}").as_bytes()).to_affine(),
                )
            })
            .collect();
        let product = pairs
            .iter()
            .fold(Gt::one(), |acc, (p, q)| acc.mul(&pairing_ate(p, q)));
        assert_eq!(multi_pairing_ate(&pairs), product);
    }

    #[test]
    fn ate_and_tate_generate_consistent_relations() {
        // They are different pairings, but both must respect the same
        // bilinear relations — the batch-verification identity checked with
        // one must hold exactly when checked with the other.
        let p = hash_to_g1(b"consistency-p");
        let q = hash_to_g2(b"consistency-q");
        let k = Fr::hash(b"consistency-k");
        // e(kP, Q) · e(P, Q)^{-k} = 1 under both pairings.
        for pairing_fn in [crate::pairing::pairing_tate, pairing_ate] {
            let lhs = pairing_fn(&p.mul_fr(&k).to_affine(), &q.to_affine());
            let rhs = pairing_fn(&p.to_affine(), &q.to_affine()).pow(&k);
            assert_eq!(lhs, rhs);
        }
        // And they genuinely differ (fixed-exponent relation, not equality).
        assert_ne!(
            crate::pairing::pairing_tate(&p.to_affine(), &q.to_affine()),
            pairing_ate(&p.to_affine(), &q.to_affine()),
        );
    }

    #[test]
    fn derived_coefficients_have_expected_orders() {
        // γ₂³ = ξ^(p−1), γ₃² = ξ^(p−1), ω³ = ξ^(p²−1) = 1.
        let (g2, g3) = twist_frobenius_coeffs();
        let xi_pm1 = Fp2::xi().pow_limbs(&p_minus_one().to_le_limbs());
        assert_eq!(g2.mul(g2).mul(g2), xi_pm1);
        assert_eq!(g3.mul(g3), xi_pm1);
        let w = twist_frobenius_sq_coeff();
        assert_eq!(w.mul(w).mul(w), Fp2::one());
        assert_ne!(*w, Fp2::one(), "ω is a primitive cube root of unity");
    }

    #[test]
    fn twist_frobenius_fixes_the_subgroup() {
        // π(Q) must land back in G2 (on the twist and in the r-torsion),
        // and π²(Q) must equal applying π twice.
        let q = hash_to_g2(b"frob-q").to_affine();
        let pi_q = twist_frobenius((q.x(), q.y()));
        let as_point = G2Affine::from_xy(pi_q.0, pi_q.1).expect("π(Q) on the twist");
        assert!(G2::from(as_point).is_torsion_free());
        let pi2_direct = twist_frobenius_sq((q.x(), q.y()));
        let pi2_composed = twist_frobenius(twist_frobenius((q.x(), q.y())));
        assert_eq!(pi2_direct, pi2_composed);
    }
}
