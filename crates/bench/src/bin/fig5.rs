//! **Figure 5** — comparison of verification cost vs number of cloud users.
//!
//! The paper plots verification time for 1–50 users: its scheme uses a
//! *constant* number of pairings (batch verification, Section VI) while the
//! Wang et al. [4], [5]-style auditors pay pairings *linear* in the user
//! count. We (a) rebuild the analytic curves from our measured Table-I
//! costs and (b) *actually run* batch vs individual verification at several
//! user counts to confirm the model.
//!
//! ```text
//! cargo run -p seccloud-bench --release --bin fig5
//! ```
#![forbid(unsafe_code)]

use seccloud_bench::{fmt_ms, measure_ms};
use seccloud_core::analysis::costmodel::{SchemeCosts, VerificationCostModel};
use seccloud_ibs::{designate, sign, BatchItem, BatchVerifier, MasterKey};
use seccloud_pairing::{hash_to_g1, hash_to_g2, pairing, Fr, G1};

fn measured_costs() -> SchemeCosts {
    let g1 = G1::generator();
    let k = Fr::hash(b"fig5-scalar");
    let p = hash_to_g1(b"fig5-p").to_affine();
    let q = hash_to_g2(b"fig5-q").to_affine();
    SchemeCosts {
        t_pmul_ms: measure_ms(3, 50, || g1.mul_fr(&k)),
        t_pair_ms: measure_ms(2, 10, || pairing(&p, &q)),
    }
}

fn main() {
    println!("# Figure 5 — verification cost vs number of cloud users\n");

    let costs = measured_costs();
    println!(
        "Measured primitives: T_pmul = {}, T_pair = {}\n",
        fmt_ms(costs.t_pmul_ms),
        fmt_ms(costs.t_pair_ms)
    );

    // (a) Analytic curves, as in the paper's Matlab plot.
    let model = VerificationCostModel::new(costs);
    println!("## Analytic series (ms), k = 1..50\n");
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "k", "ours", "wang[4,5]", "bgls"
    );
    for (k, ours, wang) in model.fig5_series(50) {
        if k % 5 == 0 || k == 1 {
            println!(
                "{k:>4} {ours:>12.2} {wang:>12.2} {:>12.2}",
                model.bgls_ms(k)
            );
        }
    }

    // (b) Ground truth: run the real batch verifier at several sizes.
    println!("\n## Measured end-to-end verification (one signature per user)\n");
    let sio = MasterKey::from_seed(b"fig5");
    let server = sio.extract_verifier("cs");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "users", "individual", "batch", "speedup"
    );
    for &k in &[1usize, 5, 10, 20, 50] {
        let items: Vec<BatchItem> = (0..k)
            .map(|i| {
                let user = sio.extract_user(&format!("user-{i}"));
                let msg = format!("block-{i}").into_bytes();
                let s = designate(&sign(&user, &msg, b"n"), server.public());
                BatchItem {
                    signer: user.public().clone(),
                    message: msg,
                    signature: s,
                }
            })
            .collect();
        let individual = measure_ms(1, 3, || seccloud_ibs::verify_individually(&items, &server));
        let batch = measure_ms(1, 3, || {
            let mut b = BatchVerifier::new();
            for item in &items {
                b.push_item(item);
            }
            assert!(b.verify(&server));
        });
        println!(
            "{k:>6} {:>14} {:>14} {:>7.1}x",
            fmt_ms(individual),
            fmt_ms(batch),
            individual / batch
        );
    }

    println!(
        "\nShape check: ours stays near-constant in pairings while the linear \
         schemes grow ~2·T_pair per user — the crossover is at k = 1–2, as in \
         the paper's figure."
    );
}
