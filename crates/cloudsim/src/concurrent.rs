//! Concurrent audit handling (paper Section VI: "the designated verifiers
//! can concurrently handle multiple sessions from different users'
//! verifying requests").
//!
//! Two parallel drivers:
//!
//! * [`DesignatedAgency::audit_many`] — audits many jobs (across servers
//!   and owners) on a thread pool: challenges and warrants are derived
//!   serially (cheap, needs the DA's DRBG), then the pairing-heavy
//!   response verification fans out over scoped worker threads
//!   ([`seccloud_parallel`]).
//! * [`parallel_batch_fold`] — folds a large signature batch into
//!   per-thread [`BatchVerifier`]s and merges them, exploiting the
//!   aggregate's associativity; the final check is still one pairing.

use seccloud_core::computation::verify_response;
use seccloud_core::warrant::Warrant;
use seccloud_core::CloudUser;
use seccloud_ibs::{BatchItem, BatchVerifier, VerifierKey};

use crate::agency::{AuditVerdict, DesignatedAgency};
use crate::server::{CloudServer, JobHandle, ServerError};

/// One audit work item: which server, which job, which owner.
pub struct AuditJob<'a> {
    /// The server to challenge.
    pub server: &'a CloudServer,
    /// The job (request + commitment) under audit.
    pub handle: &'a JobHandle,
    /// The data owner delegating the audit.
    pub owner: &'a CloudUser,
}

impl DesignatedAgency {
    /// Audits every job concurrently on up to `threads` workers, returning
    /// verdicts in input order.
    ///
    /// This is the *direct* (in-process) batch driver; over a real wire,
    /// route batches through `seccloud-resilience`'s `ResilientPool`
    /// instead, which adds per-server breakers and replica failover so one
    /// dead endpoint degrades only its own jobs.
    ///
    /// # Errors
    ///
    /// Per-job server errors are returned in the corresponding slot.
    #[must_use = "unexamined verdicts silently drop detected cheating"]
    pub fn audit_many(
        &mut self,
        jobs: &[AuditJob<'_>],
        sample_size: usize,
        now: u64,
        threads: usize,
    ) -> Vec<Result<AuditVerdict, ServerError>> {
        // Phase 1 (serial): draw challenges from the DA's DRBG and let each
        // owner issue its warrant.
        let prepared: Vec<_> = jobs
            .iter()
            .map(|job| {
                let n = job.handle.request.len();
                let t = sample_size.min(n);
                let challenge = self.sample_challenge(n, t);
                let warrant = Warrant::issue(
                    job.owner,
                    self.identity(),
                    now + 1_000,
                    job.handle.request.digest(),
                    &[job.server.public(), self.public()],
                );
                (challenge, warrant)
            })
            .collect();

        // Phase 2 (parallel): request responses and run Algorithm 1.
        // Pairing each job with its prepared challenge up front keeps the
        // worker closure total (no worker-side indexing).
        let da_key = self.credential().key();
        let da_identity = self.identity().to_owned();
        let work: Vec<_> = jobs.iter().zip(prepared.iter()).collect();
        seccloud_parallel::parallel_map_threads(
            &work,
            threads,
            |_i, (job, (challenge, warrant))| {
                job.server
                    .handle_audit(
                        job.handle.job_id,
                        challenge,
                        warrant,
                        job.owner.public(),
                        &da_identity,
                        now,
                    )
                    .map(|response| {
                        let outcome = verify_response(
                            da_key,
                            job.owner.public(),
                            job.server.signer_public(),
                            &job.handle.request,
                            challenge,
                            &job.handle.commitment,
                            &response,
                        );
                        let detected = !outcome.is_valid();
                        AuditVerdict {
                            challenge: challenge.clone(),
                            outcome,
                            detected,
                        }
                    })
            },
        )
    }
}

/// Folds `items` into `threads` partial aggregates concurrently, merges
/// them, and runs the single-pairing batch check.
pub fn parallel_batch_fold(items: &[BatchItem], verifier: &VerifierKey, threads: usize) -> bool {
    if items.is_empty() {
        return BatchVerifier::new().verify(verifier);
    }
    let partials = seccloud_parallel::parallel_ranges(items.len(), threads, |range| {
        let mut local = BatchVerifier::new();
        for item in &items[range] {
            local.push_item(item);
        }
        local
    });
    let mut combined = BatchVerifier::new();
    for partial in &partials {
        combined.merge(partial);
    }
    debug_assert_eq!(combined.len(), items.len());
    combined.verify(verifier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use seccloud_core::computation::{ComputationRequest, ComputeFunction, RequestItem};
    use seccloud_core::storage::DataBlock;
    use seccloud_core::Sio;
    use seccloud_ibs::{designate, sign, MasterKey};

    fn request(n: u64) -> ComputationRequest {
        ComputationRequest::new(
            (0..n)
                .map(|i| RequestItem {
                    function: ComputeFunction::Sum,
                    positions: vec![i],
                })
                .collect(),
        )
    }

    #[test]
    fn audit_many_matches_serial_audits() {
        let sio = Sio::new(b"concurrent-tests");
        let mut da = DesignatedAgency::new(&sio, "da", b"agency");
        let users: Vec<_> = (0..3).map(|i| sio.register(&format!("user-{i}"))).collect();
        let mut servers: Vec<_> = (0..3)
            .map(|i| {
                let behavior = if i == 1 {
                    Behavior::ComputationCheater {
                        csc: 0.0,
                        guess_range: None,
                    }
                } else {
                    Behavior::Honest
                };
                CloudServer::new(&sio, &format!("cs-{i}"), behavior, b"s")
            })
            .collect();

        let mut handles = Vec::new();
        for (user, server) in users.iter().zip(servers.iter_mut()) {
            let blocks: Vec<DataBlock> = (0..6u64)
                .map(|i| DataBlock::from_values(i, &[i, i * 2]))
                .collect();
            let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
            server.store(user, signed);
            handles.push(
                server
                    .handle_computation(&user.identity().to_string(), &request(6), da.public())
                    .unwrap(),
            );
        }

        let jobs: Vec<AuditJob<'_>> = users
            .iter()
            .zip(servers.iter())
            .zip(handles.iter())
            .map(|((owner, server), handle)| AuditJob {
                server,
                handle,
                owner,
            })
            .collect();
        let verdicts = da.audit_many(&jobs, 6, 0, 4);
        assert_eq!(verdicts.len(), 3);
        assert!(!verdicts[0].as_ref().unwrap().detected, "honest server 0");
        assert!(verdicts[1].as_ref().unwrap().detected, "cheating server 1");
        assert!(!verdicts[2].as_ref().unwrap().detected, "honest server 2");
    }

    #[test]
    fn audit_many_single_thread_degenerates_gracefully() {
        let sio = Sio::new(b"concurrent-single");
        let mut da = DesignatedAgency::new(&sio, "da", b"agency");
        let user = sio.register("alice");
        let mut server = CloudServer::new(&sio, "cs", Behavior::Honest, b"s");
        let blocks: Vec<DataBlock> = (0..4u64).map(|i| DataBlock::from_values(i, &[i])).collect();
        server.store(
            &user,
            user.sign_blocks(&blocks, &[server.public(), da.public()]),
        );
        let handle = server
            .handle_computation(&user.identity().to_string(), &request(4), da.public())
            .unwrap();
        let jobs = [AuditJob {
            server: &server,
            handle: &handle,
            owner: &user,
        }];
        for threads in [1, 8, 100] {
            let verdicts = da.audit_many(&jobs, 2, 0, threads);
            assert!(!verdicts[0].as_ref().unwrap().detected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_batch_fold_agrees_with_sequential() {
        let m = MasterKey::from_seed(b"parfold");
        let server = m.extract_verifier("cs");
        let items: Vec<BatchItem> = (0..17)
            .map(|i| {
                let user = m.extract_user(&format!("u{}", i % 5));
                let msg = format!("m{i}").into_bytes();
                let sig = designate(&sign(&user, &msg, b"n"), server.public());
                BatchItem {
                    signer: user.public().clone(),
                    message: msg,
                    signature: sig,
                }
            })
            .collect();
        for threads in [1, 2, 4, 17, 64] {
            assert!(
                parallel_batch_fold(&items, &server, threads),
                "threads={threads}"
            );
        }
        // One poisoned item fails the parallel fold too.
        let mut bad = items.clone();
        bad[9].message = b"tampered".to_vec();
        for threads in [1, 4] {
            assert!(!parallel_batch_fold(&bad, &server, threads));
        }
    }

    #[test]
    fn parallel_batch_fold_empty_and_tiny() {
        let m = MasterKey::from_seed(b"parfold-edge");
        let server = m.extract_verifier("cs");
        assert!(parallel_batch_fold(&[], &server, 4), "empty batch is valid");
        let user = m.extract_user("solo");
        let sig = designate(&sign(&user, b"m", b"n"), server.public());
        let one = [BatchItem {
            signer: user.public().clone(),
            message: b"m".to_vec(),
            signature: sig,
        }];
        assert!(parallel_batch_fold(&one, &server, 16));
    }
}
