//! Cross-user, cross-shard batch verification fused into one Miller loop.

use std::sync::Arc;

use seccloud_ibs::BatchVerifier;
use seccloud_pairing::{multi_miller_loop, G2Prepared, Gt, G1};

/// One shard's running aggregate in the sense of paper eq. (8): the sum
/// `U_A = Σᵢⱼ (Uᵢⱼ + hᵢⱼ·Q_IDᵢ)` and the product `Σ_A = Πᵢⱼ Σᵢⱼ` over
/// every audited signature in the shard.
#[derive(Clone, Copy, Debug, Default)]
struct Lane {
    u: Option<G1>,
    sigma: Option<Gt>,
    folded: usize,
}

/// Accumulates per-shard `(U_A, Σ_A)` aggregates over an epoch and checks
/// them all with a **single** [`multi_miller_loop`] call.
///
/// Each shard verifies against its own prepared key `sk_{V_s}` (shards
/// have distinct designated verifiers), so the per-shard checks
/// `ê(U_s, sk_{V_s}) = Σ_s` — paper eq. (9), one per shard — fuse into
///
/// ```text
/// Π_s ê(U_s, sk_{V_s})  =  Π_s Σ_s
/// ```
///
/// evaluated as one shared Miller loop and one final exponentiation,
/// regardless of how many users, signatures or shards contributed. The
/// marginal cost of an extra audited signature is a `G1` add plus a `GT`
/// multiply at fold time; the marginal cost of an extra *shard* is one
/// Miller-loop argument.
///
/// Soundness is the product relation: a forged `Σ` in one shard can only
/// pass if another shard's aggregate is off by exactly the inverse error
/// term, which requires breaking the underlying designated-verifier
/// scheme (shards use independent verifier keys).
#[derive(Clone, Debug)]
pub struct EpochVerifier {
    epoch: u64,
    lanes: Vec<Lane>,
}

impl EpochVerifier {
    /// An empty accumulator for `shards` shards (clamped to ≥ 1) in
    /// `epoch`.
    pub fn new(shards: u32, epoch: u64) -> Self {
        Self {
            epoch,
            lanes: vec![Lane::default(); shards.max(1) as usize],
        }
    }

    /// The epoch this accumulator covers.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The number of shard lanes.
    pub fn shard_count(&self) -> u32 {
        self.lanes.len() as u32
    }

    /// Total signatures folded across all shards.
    pub fn folded(&self) -> usize {
        self.lanes.iter().map(|l| l.folded).sum()
    }

    /// Signatures folded into one shard's lane (0 if out of range).
    pub fn shard_folded(&self, shard: u32) -> usize {
        self.lanes.get(shard as usize).map_or(0, |l| l.folded)
    }

    /// Folds one signature's aggregate terms — `u = U + h·Q_ID` and
    /// `sigma = Σ` — into `shard`'s lane, counting it as `count`
    /// signatures (batched pushes fold pre-merged terms). Out-of-range
    /// shards are ignored and reported as `false`.
    pub fn fold_aggregate(&mut self, shard: u32, u: &G1, sigma: &Gt, count: usize) -> bool {
        let Some(lane) = self.lanes.get_mut(shard as usize) else {
            return false;
        };
        lane.u = Some(match &lane.u {
            Some(acc) => acc.add(u),
            None => *u,
        });
        lane.sigma = Some(match &lane.sigma {
            Some(acc) => acc.mul(sigma),
            None => *sigma,
        });
        lane.folded += count;
        true
    }

    /// Folds a whole per-user [`BatchVerifier`] into `shard`'s lane. An
    /// empty batch folds nothing (and returns `true` — there is nothing
    /// to lose).
    pub fn fold(&mut self, shard: u32, batch: &BatchVerifier) -> bool {
        match batch.aggregate() {
            Some((u, sigma)) => self.fold_aggregate(shard, &u, &sigma, batch.len()),
            None => true,
        }
    }

    /// Checks every folded aggregate in one fused pairing evaluation.
    ///
    /// `keys[s]` is shard `s`'s prepared verifier key `sk_{V_s}`; shards
    /// that folded nothing are skipped, and a shard that folded
    /// signatures but has no key fails the whole epoch (a missing key
    /// must never silently skip real audits). An accumulator with no
    /// folded signatures at all verifies vacuously.
    pub fn verify(&self, keys: &[Arc<G2Prepared>]) -> bool {
        let mut points = Vec::with_capacity(self.lanes.len());
        let mut expected = Gt::one();
        for (shard, lane) in self.lanes.iter().enumerate() {
            let (Some(u), Some(sigma)) = (&lane.u, &lane.sigma) else {
                continue;
            };
            let Some(key) = keys.get(shard) else {
                return false;
            };
            points.push((u.to_affine(), Arc::clone(key)));
            expected = expected.mul(sigma);
        }
        if points.is_empty() {
            return true;
        }
        let pairs: Vec<(&seccloud_pairing::G1Affine, &G2Prepared)> =
            points.iter().map(|(p, k)| (p, k.as_ref())).collect();
        multi_miller_loop(&pairs) == expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_ibs::{designate, sign, MasterKey};

    /// Builds `users` users spread over `shards` shards, each signing
    /// `per_user` messages to its shard's own verifier, folded both into
    /// an `EpochVerifier` and returned per-shard for cross-checking.
    fn folded_epoch(
        users: usize,
        per_user: usize,
        shards: u32,
    ) -> (EpochVerifier, Vec<Arc<G2Prepared>>) {
        let sio = MasterKey::from_seed(b"registry-batch-tests");
        let verifiers: Vec<_> = (0..shards)
            .map(|s| sio.extract_verifier(&format!("da/shard-{s}")))
            .collect();
        let keys: Vec<Arc<G2Prepared>> = verifiers.iter().map(|v| v.sk_prepared()).collect();
        let mut epoch = EpochVerifier::new(shards, 1);
        for i in 0..users {
            let id = format!("tenant-{i}");
            let user = sio.extract_user(&id);
            let shard = crate::shard_of(&id, 1, shards);
            let verifier = &verifiers[shard as usize];
            let mut batch = BatchVerifier::new();
            for j in 0..per_user {
                let msg = format!("block {i}/{j}").into_bytes();
                let nonce = format!("nonce {i}/{j}").into_bytes();
                let designated = designate(&sign(&user, &msg, &nonce), verifier.public());
                batch.push(user.public().clone(), msg, designated);
            }
            assert!(epoch.fold(shard, &batch));
        }
        (epoch, keys)
    }

    #[test]
    fn fused_verification_accepts_honest_aggregates() {
        let (epoch, keys) = folded_epoch(6, 2, 3);
        assert_eq!(epoch.folded(), 12);
        assert!(epoch.verify(&keys));
    }

    #[test]
    fn one_bad_sigma_fails_the_fused_check() {
        let (mut epoch, keys) = folded_epoch(4, 1, 2);
        // Fold a forged sigma into shard 0: nothing knows the discrete
        // log relation, so the product equation must break.
        epoch.fold_aggregate(0, &G1::generator(), &Gt::one().invert(), 1);
        assert!(!epoch.verify(&keys));
    }

    #[test]
    fn empty_accumulator_is_vacuously_valid() {
        let epoch = EpochVerifier::new(4, 0);
        assert_eq!(epoch.folded(), 0);
        assert!(epoch.verify(&[]));
    }

    #[test]
    fn missing_key_for_a_live_shard_fails_closed() {
        let (epoch, keys) = folded_epoch(6, 1, 3);
        let truncated = &keys[..1];
        assert!(!epoch.verify(truncated));
    }

    #[test]
    fn fused_check_matches_per_shard_checks() {
        let (epoch, keys) = folded_epoch(5, 2, 4);
        assert!(epoch.verify(&keys));
        // Swapping two shards' keys must fail even though the *set* of
        // keys is unchanged — the fusion binds each lane to its shard.
        let mut swapped = keys.clone();
        swapped.swap(0, 1);
        if epoch.shard_folded(0) > 0 || epoch.shard_folded(1) > 0 {
            assert!(!epoch.verify(&swapped));
        }
    }

    #[test]
    fn out_of_range_shard_is_rejected() {
        let mut epoch = EpochVerifier::new(2, 0);
        assert!(!epoch.fold_aggregate(7, &G1::generator(), &Gt::one(), 1));
        assert_eq!(epoch.folded(), 0);
    }
}
