//! The random tape generators draw from.
//!
//! A [`Tape`] is a finite byte string with a cursor. Generators consume it
//! front to back; once exhausted, every further draw returns zero. That
//! convention is what makes byte-level shrinking sound: *any* prefix (or
//! zeroed-out variant) of a tape is itself a valid tape, and shorter/more
//! zeroed tapes produce structurally smaller values.

use seccloud_hash::HmacDrbg;

/// A byte tape with a cursor; draws past the end yield zeros.
#[derive(Clone, Debug)]
pub struct Tape {
    data: Vec<u8>,
    pos: usize,
}

impl Tape {
    /// Wraps an explicit byte string.
    pub fn new(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }

    /// Fills a fresh tape of `len` bytes from `drbg`.
    pub fn from_drbg(drbg: &mut HmacDrbg, len: usize) -> Self {
        Self::new(drbg.next_bytes(len))
    }

    /// The backing bytes (shrinkers rewrite these).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// How many bytes have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos.min(self.data.len())
    }

    /// One byte (0 when exhausted).
    pub fn next_u8(&mut self) -> u8 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// A big-endian `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut v = 0u64;
        for _ in 0..8 {
            v = (v << 8) | u64::from(self.next_u8());
        }
        v
    }

    /// A big-endian `u128`.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// A value in `0..bound` (`0` when `bound == 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// A boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u8() & 1 == 1
    }

    /// `n` raw bytes (zero-padded when exhausted).
    pub fn next_bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_u8()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_prefix_stable() {
        let mut a = Tape::new(vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = Tape::new(vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exhausted_tape_yields_zeros() {
        let mut t = Tape::new(vec![0xff]);
        assert_eq!(t.next_u8(), 0xff);
        assert_eq!(t.next_u64(), 0);
        assert_eq!(t.next_below(100), 0);
        assert!(!t.next_bool());
        assert_eq!(t.consumed(), 1);
    }

    #[test]
    fn drbg_tapes_are_seed_deterministic() {
        let mut d1 = HmacDrbg::new(b"tape");
        let mut d2 = HmacDrbg::new(b"tape");
        assert_eq!(
            Tape::from_drbg(&mut d1, 64).data(),
            Tape::from_drbg(&mut d2, 64).data()
        );
    }
}
