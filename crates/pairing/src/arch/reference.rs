//! The strict reference backend — the original field arithmetic of this
//! crate, kept verbatim as the oracle the faster backends are tested
//! against. Every operation reduces eagerly: no value wider than 4 limbs
//! ever survives past a single operation.

use seccloud_bigint::{adc, mac, U256};

/// Loop-based CIOS Montgomery multiplication with a strict final subtract.
pub fn mont_mul(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4], inv: u64) -> [u64; 4] {
    let mut t = [0u64; 6];
    for &ai in a.iter() {
        let mut carry = 0;
        for j in 0..4 {
            let (lo, c) = mac(t[j], ai, b[j], carry);
            t[j] = lo;
            carry = c;
        }
        let (lo, c) = adc(t[4], carry, 0);
        t[4] = lo;
        t[5] = c;

        let k = t[0].wrapping_mul(inv);
        let (_, mut carry) = mac(t[0], k, m[0], 0);
        for j in 1..4 {
            let (lo, c) = mac(t[j], k, m[j], carry);
            t[j - 1] = lo;
            carry = c;
        }
        let (lo, c) = adc(t[4], carry, 0);
        t[3] = lo;
        t[4] = t[5] + c;
        t[5] = 0;
    }
    let mut out = U256::from_limbs([t[0], t[1], t[2], t[3]]);
    let modulus = U256::from_limbs(*m);
    if t[4] != 0 || out >= modulus {
        out = out.wrapping_sub(&modulus);
    }
    *out.limbs()
}

/// Modular addition via `U256` round-trips (the original implementation).
pub fn add_mod(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let a = U256::from_limbs(*a);
    let b = U256::from_limbs(*b);
    let m = U256::from_limbs(*m);
    // a, b < m < 2²⁵⁵ so no carry out of 256 bits.
    let mut s = a.wrapping_add(&b);
    if s >= m {
        s = s.wrapping_sub(&m);
    }
    *s.limbs()
}

/// Modular subtraction via `U256` round-trips (the original implementation).
pub fn sub_mod(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let a = U256::from_limbs(*a);
    let b = U256::from_limbs(*b);
    let (mut d, borrow) = a.overflowing_sub(&b);
    if borrow {
        d = d.wrapping_add(&U256::from_limbs(*m));
    }
    *d.limbs()
}

/// Modular negation (the original implementation).
pub fn neg_mod(a: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    if *a == [0u64; 4] {
        return *a;
    }
    let m = U256::from_limbs(*m);
    let v = U256::from_limbs(*a);
    *m.wrapping_sub(&v).limbs()
}

/// Strict Karatsuba `Fp2` product (3 reduced multiplications), exactly as
/// the tower computed it before the backend split.
pub fn fp2_mul(
    a0: &[u64; 4],
    a1: &[u64; 4],
    b0: &[u64; 4],
    b1: &[u64; 4],
    m: &[u64; 4],
    inv: u64,
) -> ([u64; 4], [u64; 4]) {
    let aa = mont_mul(a0, b0, m, inv);
    let bb = mont_mul(a1, b1, m, inv);
    let sa = add_mod(a0, a1, m);
    let sb = add_mod(b0, b1, m);
    let sum = mont_mul(&sa, &sb, m, inv);
    let c0 = sub_mod(&aa, &bb, m);
    let c1 = sub_mod(&sub_mod(&sum, &aa, m), &bb, m);
    (c0, c1)
}

/// Strict `Fp2` square `(a+b)(a−b) + 2ab·u` (2 reduced multiplications).
pub fn fp2_sqr(a0: &[u64; 4], a1: &[u64; 4], m: &[u64; 4], inv: u64) -> ([u64; 4], [u64; 4]) {
    let plus = add_mod(a0, a1, m);
    let minus = sub_mod(a0, a1, m);
    let c0 = mont_mul(&plus, &minus, m, inv);
    let cross = mont_mul(a0, a1, m, inv);
    let c1 = add_mod(&cross, &cross, m);
    (c0, c1)
}
