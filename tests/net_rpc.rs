//! Socket-level sweep: the full audit protocol over real TCP, with and
//! without seeded socket chaos.
//!
//! The machine-checked invariants, now against a kernel socket instead of
//! a vector in memory:
//!
//! * an honest server behind a [`ChaosProxy`] at a 20% per-frame fault
//!   rate is audited **clean on every job** under `ResilientTransport`,
//!   while a computation cheater behind the same chaos is still convicted;
//! * each socket condition maps to the right [`WireError`] variant —
//!   mid-frame disconnect → `TruncatedFrame`, slow-loris stall →
//!   `Timeout`, oversized declared length → `FrameTooLarge`
//!   (non-transient, rejected before allocation) — on both the client and
//!   the server side of the connection;
//! * the chaos schedule is deterministic: a same-seed replay produces
//!   byte-identical deliveries;
//! * the client transport reconnects transparently across the server's
//!   per-connection request cap.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use seccloud::cloudsim::behavior::Behavior;
use seccloud::cloudsim::rpc::{encode_store_body, RpcError};
// lint: allow(transport, reason=the net runtime serves the raw trait; this suite wraps it in NetServer and dials it)
use seccloud::cloudsim::rpc::{WireServer, WireTransport};
use seccloud::cloudsim::{CloudServer, DesignatedAgency};
use seccloud::core::computation::{ComputationRequest, ComputeFunction, RequestItem};
use seccloud::core::storage::DataBlock;
use seccloud::core::wire::{WireError, WireMessage};
use seccloud::core::{CloudUser, Sio};
use seccloud::ibs::{UserPublic, VerifierPublic};
use seccloud::net::frame::{encode_frame, read_frame, FRAME_MAGIC};
use seccloud::net::{
    ChaosAction, ChaosConfig, ChaosEngine, ChaosProxy, NetClientConfig, NetResponse, NetServer,
    NetServerConfig, NetTransport,
};
use seccloud::resilience::{run_job_resilient, AuditResolution, ResilientTransport, RetryPolicy};

const N_BLOCKS: u64 = 12;

// --- world building -------------------------------------------------------

struct NetWorld {
    user: CloudUser,
    da: DesignatedAgency,
    server: NetServer,
    verifier: VerifierPublic,
    signer: UserPublic,
    da_public: VerifierPublic,
}

fn net_world(label: &[u8], behavior: Behavior) -> NetWorld {
    let sio = Sio::new(label);
    let user = sio.register("alice");
    let server = CloudServer::new(&sio, "cs", behavior, b"srv");
    let da = DesignatedAgency::new(&sio, "da", b"agency");
    let verifier = server.public().clone();
    let signer = server.signer_public().clone();
    let da_public = da.public().clone();
    // lint: allow(transport, reason=constructing the NetServer around the raw byte endpoints under test)
    let net = NetServer::spawn(WireServer::new(server), NetServerConfig::default())
        .expect("loopback bind");
    NetWorld {
        user,
        da,
        server: net,
        verifier,
        signer,
        da_public,
    }
}

fn client_for(addr: SocketAddr, world: &NetWorld) -> NetTransport {
    // lint: allow(transport, reason=the raw socket client is the object under test; resilient arms wrap it below)
    NetTransport::new(
        addr,
        world.verifier.clone(),
        world.signer.clone(),
        NetClientConfig::default(),
    )
}

fn signed_upload_body(world: &NetWorld) -> Vec<u8> {
    let blocks: Vec<DataBlock> = (0..N_BLOCKS)
        .map(|i| DataBlock::from_values(i, &[i * 7, i + 1]))
        .collect();
    let signed = world
        .user
        .sign_blocks(&blocks, &[&world.verifier, &world.da_public]);
    encode_store_body(&signed)
}

fn request() -> ComputationRequest {
    ComputationRequest::new(
        (0..N_BLOCKS / 2)
            .map(|i| RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![i, i + N_BLOCKS / 2],
            })
            .collect(),
    )
}

fn patient_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        max_rounds: 6,
        ..RetryPolicy::default()
    }
}

// --- resilient audits through live chaos ----------------------------------

#[test]
fn honest_server_through_chaos_is_clean_on_every_job() {
    let world = net_world(b"net-honest-chaos", Behavior::Honest);
    let proxy = ChaosProxy::spawn(
        world.server.addr(),
        ChaosConfig {
            seed: 42,
            fault_rate_pct: 20,
            stall_ms: 20,
        },
    )
    .expect("proxy bind");
    let client = client_for(proxy.addr(), &world);
    let mut transport = ResilientTransport::new(client, patient_policy(), b"net-honest");

    // Upload rides the same chaotic socket; the resilient layer retries
    // through whatever the proxy does to the frames.
    let body = signed_upload_body(&world);
    let accepted = transport
        .rpc_store(world.user.identity(), &body)
        .expect("resilient store");
    // A response-direction bit flip can mangle the *reported* count while
    // the request (delivered intact — flips only hit responses) stored all
    // twelve blocks; the audits below are the authoritative check.
    assert!(accepted <= N_BLOCKS);

    let req = request();
    let mut da = world.da;
    let jobs = 8;
    let mut clean = 0u32;
    for _ in 0..jobs {
        match run_job_resilient(&mut da, &mut transport, &world.user, &req, 3, 0) {
            AuditResolution::Clean { .. } => clean += 1,
            other => panic!("honest server under 20% chaos must audit clean, got {other:?}"),
        }
    }
    assert_eq!(clean, jobs, "every job must converge to a clean verdict");
    // The chaos actually fired: at 20% over dozens of frames, a fault-free
    // plan would mean the proxy was bypassed.
    let faults = proxy
        .plan()
        .iter()
        .filter(|e| e.action != ChaosAction::Deliver)
        .count();
    assert!(faults > 0, "no faults recorded — proxy not in the path?");
    proxy.shutdown();
    world.server.shutdown();
}

#[test]
fn cheater_through_chaos_is_still_convicted() {
    let world = net_world(
        b"net-cheater-chaos",
        Behavior::ComputationCheater {
            csc: 0.0,
            guess_range: None,
        },
    );
    let proxy = ChaosProxy::spawn(
        world.server.addr(),
        ChaosConfig {
            seed: 1337,
            fault_rate_pct: 20,
            stall_ms: 20,
        },
    )
    .expect("proxy bind");
    let client = client_for(proxy.addr(), &world);
    let mut transport = ResilientTransport::new(client, patient_policy(), b"net-cheater");

    let body = signed_upload_body(&world);
    // As in the honest case: the count may be flip-mangled in transit, the
    // storage itself is complete once the call returns Ok.
    assert!(
        transport
            .rpc_store(world.user.identity(), &body)
            .expect("resilient store")
            <= N_BLOCKS
    );

    let req = request();
    let mut da = world.da;
    // Sample every item so a completed audit cannot miss the cheat.
    let resolution = run_job_resilient(&mut da, &mut transport, &world.user, &req, req.len(), 0);
    match resolution {
        AuditResolution::Detected { verdict, .. } => {
            assert!(verdict.detected, "conviction carries a detected verdict");
        }
        other => panic!("cheater must be convicted over chaos, got {other:?}"),
    }
    proxy.shutdown();
    world.server.shutdown();
}

// --- socket-condition → WireError mapping (client side) -------------------

/// Spawns a one-connection scripted peer; `script` gets the accepted
/// stream after the request frame has been read off it.
fn scripted_server(
    script: impl FnOnce(TcpStream) + Send + 'static,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(2_000)));
        let _ = read_frame(&mut stream); // consume the client's request
        script(stream);
    });
    (addr, handle)
}

fn fast_client(addr: SocketAddr) -> NetTransport {
    // lint: allow(transport, reason=error-mapping cases assert on the raw client, below any retry layer)
    NetTransport::new(
        addr,
        VerifierPublic::from_identity("cs"),
        UserPublic::from_identity("srv"),
        NetClientConfig {
            connect_timeout_ms: 1_000,
            read_timeout_ms: 200,
            write_timeout_ms: 1_000,
        },
    )
}

#[test]
fn mid_frame_disconnect_maps_to_truncated_frame() {
    let (addr, handle) = scripted_server(|mut stream| {
        let full = encode_frame(&NetResponse::Stored(1).to_wire());
        let _ = stream.write_all(&full[..full.len() / 2]);
        let _ = stream.flush();
        // Dropping the stream closes it mid-frame.
    });
    let mut client = fast_client(addr);
    let err = client
        .rpc_store("alice", &encode_store_body(&[]))
        .expect_err("cut frame must not decode");
    assert_eq!(err, RpcError::Malformed(WireError::TruncatedFrame));
    assert!(err.is_transient(), "mid-frame cut is channel weather");
    let _ = handle.join();
}

#[test]
fn slow_loris_stall_maps_to_timeout() {
    let (addr, handle) = scripted_server(|stream| {
        // Hold the connection open, never answer; outlive the client's
        // 200 ms read deadline.
        std::thread::sleep(Duration::from_millis(600));
        drop(stream);
    });
    let mut client = fast_client(addr);
    let err = client
        .rpc_store("alice", &encode_store_body(&[]))
        .expect_err("stalled peer must time out");
    assert_eq!(err, RpcError::Malformed(WireError::Timeout));
    assert!(err.is_transient(), "a missed deadline is retryable");
    let _ = handle.join();
}

#[test]
fn oversized_declared_length_maps_to_frame_too_large() {
    let (addr, handle) = scripted_server(|mut stream| {
        // A header declaring 4 GiB, with no payload behind it.
        let mut bomb = FRAME_MAGIC.to_vec();
        bomb.extend_from_slice(&u32::MAX.to_be_bytes());
        let _ = stream.write_all(&bomb);
        let _ = stream.flush();
        std::thread::sleep(Duration::from_millis(100));
    });
    let mut client = fast_client(addr);
    let err = client
        .rpc_store("alice", &encode_store_body(&[]))
        .expect_err("length bomb must be rejected");
    assert_eq!(err, RpcError::Malformed(WireError::FrameTooLarge));
    assert!(
        !err.is_transient(),
        "a declared-length bomb is composed, not weathered — never retried"
    );
    let _ = handle.join();
}

// --- server side of the same mapping --------------------------------------

#[test]
fn server_rejects_length_bomb_with_typed_error_then_closes() {
    let world = net_world(b"net-server-bomb", Behavior::Honest);
    let mut raw = TcpStream::connect(world.server.addr()).expect("dial");
    raw.set_read_timeout(Some(Duration::from_millis(2_000)))
        .expect("deadline");
    let mut bomb = FRAME_MAGIC.to_vec();
    bomb.extend_from_slice(&u32::MAX.to_be_bytes());
    raw.write_all(&bomb).expect("send bomb header");
    raw.flush().expect("flush");
    // The server answers with the typed error before hanging up.
    let payload = read_frame(&mut raw).expect("typed refusal");
    assert_eq!(
        NetResponse::from_wire(&payload).expect("decodes"),
        NetResponse::Failed(RpcError::Malformed(WireError::FrameTooLarge))
    );
    // ...and then the connection is gone: framing after a lying header is
    // unrecoverable.
    let mut rest = Vec::new();
    assert_eq!(raw.read_to_end(&mut rest).unwrap_or(0), 0);
    world.server.shutdown();
}

#[test]
fn server_answers_garbage_payload_with_typed_decode_error() {
    let world = net_world(b"net-server-garbage", Behavior::Honest);
    let mut raw = TcpStream::connect(world.server.addr()).expect("dial");
    raw.set_read_timeout(Some(Duration::from_millis(2_000)))
        .expect("deadline");
    raw.write_all(&encode_frame(b"not a request"))
        .expect("send garbage");
    raw.flush().expect("flush");
    let payload = read_frame(&mut raw).expect("typed response");
    match NetResponse::from_wire(&payload).expect("decodes") {
        NetResponse::Failed(RpcError::Malformed(_)) => {}
        other => panic!("expected a typed decode error, got {other:?}"),
    }
    // Framing stayed synchronized: the same connection still serves a
    // well-formed request afterwards.
    raw.write_all(&encode_frame(
        &seccloud::net::NetRequest::Retrieve {
            owner: "alice".into(),
            position: 0,
        }
        .to_wire(),
    ))
    .expect("send well-formed request");
    let payload = read_frame(&mut raw).expect("second response");
    assert_eq!(
        NetResponse::from_wire(&payload).expect("decodes"),
        NetResponse::Retrieved(None)
    );
    world.server.shutdown();
}

// --- determinism and reconnect --------------------------------------------

#[test]
fn same_seed_chaos_replay_is_byte_identical() {
    let frames: Vec<Vec<u8>> = (0u8..24)
        .map(|i| encode_frame(&vec![i; 5 + usize::from(i) * 11]))
        .collect();
    let config = ChaosConfig {
        seed: 99,
        fault_rate_pct: 50,
        stall_ms: 7,
    };
    let run = || {
        let mut out = Vec::new();
        for conn in 0..3u64 {
            let mut engine = ChaosEngine::new(&config, conn);
            for f in &frames {
                let action = engine.decide(f.len(), conn % 2 == 0);
                out.push((conn, action, engine.apply(action, f)));
            }
        }
        out
    };
    assert_eq!(run(), run(), "same seed must replay byte-identically");
}

#[test]
fn client_reconnects_across_server_request_cap() {
    let sio = Sio::new(b"net-reconnect");
    let user = sio.register("alice");
    let server = CloudServer::new(&sio, "cs", Behavior::Honest, b"srv");
    let da = DesignatedAgency::new(&sio, "da", b"agency");
    let verifier = server.public().clone();
    let signer = server.signer_public().clone();
    let blocks: Vec<DataBlock> = (0..4u64).map(|i| DataBlock::from_values(i, &[i])).collect();
    let signed = user.sign_blocks(&blocks, &[&verifier, da.public()]);
    // A tiny request cap: the server hangs up every two requests.
    let net = NetServer::spawn(
        // lint: allow(transport, reason=constructing the NetServer around the raw byte endpoints under test)
        WireServer::new(server),
        NetServerConfig {
            max_requests_per_conn: 2,
            ..NetServerConfig::default()
        },
    )
    .expect("bind");
    // lint: allow(transport, reason=reconnect behaviour is a property of the raw client itself)
    let mut client = NetTransport::new(net.addr(), verifier, signer, NetClientConfig::default());
    assert_eq!(
        client
            .rpc_store(user.identity(), &encode_store_body(&signed))
            .expect("store"),
        4
    );
    for round in 0..8u64 {
        let position = round % 4;
        let bytes = client
            .rpc_retrieve(user.identity(), position)
            .expect("retrieve");
        let block = seccloud::core::storage::SignedBlock::from_wire(&bytes).expect("decode");
        assert_eq!(block.block().index(), position);
    }
    assert!(
        client.reconnects() >= 4,
        "a cap of 2 requests/conn across 9 calls needs ≥4 dials, saw {}",
        client.reconnects()
    );
    net.shutdown();
}
