//! **Theorem 3 / eq. 17–18** — the cost-optimal sampling size.
//!
//! Sweeps the total-cost model
//! `C_total = a₁·t·C_trans + a₂·C_comp + a₃·C_cheat·qᵗ`
//! over cheat-success probabilities `q` and cost regimes, printing the
//! closed-form optimum next to a brute-force scan (they must agree).
//!
//! ```text
//! cargo run -p seccloud-bench --release --bin optimal_t
//! ```
#![forbid(unsafe_code)]

use seccloud_core::analysis::costmodel::CostParams;
use seccloud_core::computation::{
    AuditChallenge, CommitmentSession, ComputationRequest, ComputeFunction, RequestItem,
};
use seccloud_core::storage::DataBlock;
use seccloud_core::wire::WireMessage;
use seccloud_core::Sio;

fn brute_force(params: &CostParams, q: f64, max_t: u32) -> u32 {
    (0..=max_t)
        .min_by(|&a, &b| {
            params
                .total_cost(a, q)
                .partial_cmp(&params.total_cost(b, q))
                .expect("finite costs")
        })
        .expect("nonempty range")
}

fn main() {
    println!("# Theorem 3 — optimal sampling size t* minimizing C_total\n");

    println!("## Sweep over q (C_trans = 1, C_comp = 5, C_cheat = 10⁶)\n");
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>14}",
        "q", "t* (closed)", "t* (brute)", "C(t*)", "C(t*+5)"
    );
    let params = CostParams::new(1.0, 5.0, 1e6);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let closed = params.optimal_sample_size(q).expect("well-posed");
        let brute = brute_force(&params, q, 5_000);
        assert_eq!(closed, brute, "closed form must match brute force");
        println!(
            "{q:>6.2} {closed:>10} {brute:>12} {:>14.1} {:>14.1}",
            params.total_cost(closed, q),
            params.total_cost(closed + 5, q)
        );
    }

    println!("\n## Sweep over C_cheat (q = 0.5, C_trans = 1)\n");
    println!("{:>12} {:>10} {:>14}", "C_cheat", "t*", "C(t*)");
    for c_cheat in [1e2, 1e4, 1e6, 1e8, 1e10] {
        let p = CostParams::new(1.0, 5.0, c_cheat);
        let t = p.optimal_sample_size(0.5).expect("well-posed");
        assert_eq!(t, brute_force(&p, 0.5, 5_000));
        println!("{c_cheat:>12.0} {t:>10} {:>14.1}", p.total_cost(t, 0.5));
    }

    println!("\n## Sweep over C_trans (q = 0.5, C_cheat = 10⁶)\n");
    println!("{:>12} {:>10}", "C_trans", "t*");
    for c_trans in [0.01, 0.1, 1.0, 10.0, 100.0, 1e7] {
        let p = CostParams::new(c_trans, 5.0, 1e6);
        let t = p.optimal_sample_size(0.5).expect("well-posed");
        assert_eq!(t, brute_force(&p, 0.5, 5_000));
        println!("{c_trans:>12.2} {t:>10}");
    }

    println!(
        "\nShape checks: t* grows logarithmically with C_cheat, shrinks with \
         C_trans, and hits 0 when sampling costs more than the cheat exposure \
         — exactly eq. 18's ⌈ln(a₁·C_trans/(a₃·C_cheat·(−ln q)))/ln q⌉."
    );

    // Ground the abstract C_trans in reality: the wire size of an actual
    // audit response as a function of the sampling size t.
    println!("\n## Measured transmission cost (wire bytes of the audit response)\n");
    let sio = Sio::new(b"optimal-t-comm");
    let user = sio.register("alice");
    let cs = sio.register_verifier("cs");
    let da = sio.register_verifier("da");
    let n = 256u64;
    let blocks: Vec<DataBlock> = (0..n)
        .map(|i| DataBlock::from_values(i, &[i, i + 1]))
        .collect();
    let stored = user.sign_blocks(&blocks, &[cs.public(), da.public()]);
    let request = ComputationRequest::new(
        (0..n)
            .map(|i| RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![i],
            })
            .collect(),
    );
    let (_, session) = CommitmentSession::commit(
        &request,
        |p| stored.get(p as usize),
        cs.signer(),
        da.public(),
    )
    .expect("all stored");
    println!(
        "{:>4} {:>14} {:>16} {:>14}",
        "t", "response bytes", "bytes per sample", "compact bytes"
    );
    let mut per_sample = Vec::new();
    for t in [1usize, 8, 15, 33, 64] {
        let challenge =
            AuditChallenge::from_indices((0..t).map(|i| i * (n as usize / t)).collect());
        let response = session.respond(&challenge).expect("in range");
        let compact = session.respond_compact(&challenge).expect("in range");
        let size = response.to_wire().len();
        per_sample.push(size as f64 / t as f64);
        println!(
            "{t:>4} {size:>14} {:>16.0} {:>14}",
            size as f64 / t as f64,
            compact.to_wire().len()
        );
    }
    // The marginal cost per sample should be roughly constant — the
    // assumption behind eq. 17's a₁·t·C_trans term.
    let (min, max) = per_sample
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    println!(
        "\nper-sample spread {:.0}–{:.0} bytes: near-linear in t, validating \
         the a₁·t·C_trans model.",
        min, max
    );
}
