//! Minimal SARIF 2.1.0 rendering of a lint [`Report`].
//!
//! Emits the subset of the schema
//! (<https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>)
//! that code-scanning UIs consume: one run, a `tool.driver` with the
//! rule catalogue, and one `result` per finding with a
//! `physicalLocation` (`artifactLocation.uri` + `region.startLine`).
//! Built by hand on the same escaping helper as the JSON baseline —
//! the workspace's zero-dependency rule applies to its tooling too.

use crate::rules::{Report, ALL_RULES};

/// The SARIF version this module emits.
pub const SARIF_VERSION: &str = "2.1.0";

/// Short per-rule descriptions for the SARIF rule catalogue.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "panic" => "No unwrap/expect/panic macros in protocol-path code.",
        "panic_path" => "Protocol-path fns must not transitively reach a panic source.",
        "index" => "No bare index/slice expressions in wire-decode paths.",
        "secret" => "Secret types: no Debug/Serialize derive, zeroize on Drop.",
        "taint" => "Secret-derived values must never reach format or wire-encode sinks.",
        "ct" => "Digest/tag comparisons must be constant-time (ct_eq).",
        "ctflow" => {
            "Secret-tainted values must not reach timing sinks (branches, \
                     comparisons, indices, loop bounds)."
        }
        "vartime" => {
            "Variable-time primitives (inverse_vartime, wNAF, Pippenger windows) \
                      are reachable from public inputs only."
        }
        "atomics" => {
            "Every Ordering::* choice carries an ordering(reason); no Relaxed RMW \
                      on security-scoped atomics."
        }
        "locks" => {
            "No lock-order cycles across the workspace and no re-entrant \
                    acquisition of a held Mutex/RwLock/OnceLock."
        }
        "blocking" => {
            "No socket I/O, channel send/recv, joins, sleeps, or pairing work \
                       while a lock is held (escape: lock(reason))."
        }
        "deadline" => {
            "Every std::net read/write must be dominated by set_read_timeout/\
                       set_write_timeout on the same stream."
        }
        "arith" => "Sampling/backoff integer math must be checked or saturating.",
        "dispatch" => "Matches on wire enums must not hide variants behind a catch-all `_`.",
        "unsafe" => "forbid(unsafe_code) on crate roots; SAFETY comments on unsafe blocks.",
        "transport" => "Raw wire channels only inside cloudsim/resilience/testkit/net.",
        "annotation" => "lint: annotations must parse and carry a reason.",
        _ => "seccloud-lint rule.",
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `report` as a SARIF 2.1.0 document.
#[must_use]
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str(&format!("  \"version\": \"{SARIF_VERSION}\",\n"));
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"seccloud-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        let sep = if i + 1 == ALL_RULES.len() { "" } else { "," };
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{sep}\n",
            esc(rule),
            esc(rule_description(rule)),
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 == report.findings.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{sep}\n",
            esc(f.rule),
            esc(&f.message),
            esc(&f.file),
            f.line,
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, RULE_TAINT};

    #[test]
    fn sarif_document_has_schema_rules_and_results() {
        let report = Report {
            findings: vec![Finding {
                rule: RULE_TAINT,
                file: "crates/ibs/src/keys.rs".to_string(),
                line: 7,
                message: "secret \"leak\"\nwith newline".to_string(),
            }],
            allowances: Vec::new(),
            files: 1,
        };
        let doc = render_sarif(&report);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"name\": \"seccloud-lint\""));
        assert!(doc.contains("\"ruleId\": \"taint\""));
        assert!(doc.contains("\"startLine\": 7"));
        assert!(doc.contains("secret \\\"leak\\\"\\nwith newline"));
        // Every rule id appears in the catalogue.
        for rule in ALL_RULES {
            assert!(doc.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
        }
    }

    #[test]
    fn empty_report_renders_empty_results() {
        let doc = render_sarif(&Report::default());
        assert!(doc.contains("\"results\": [\n      ]"));
    }
}
