//! Benches for the end-to-end protocol steps: block signing (Protocol II),
//! commitment generation (Protocol III) and the sampling audit
//! (Algorithm 1) at several sampling sizes — including the
//! batch-vs-individual and serial-vs-parallel audit ablations.

use seccloud_bench::Bench;
use seccloud_core::computation::{
    verify_response, verify_response_batched, verify_response_parallel, AuditChallenge, Commitment,
    CommitmentSession, ComputationRequest, ComputeFunction, RequestItem,
};
use seccloud_core::storage::{DataBlock, SignedBlock};
use seccloud_core::{CloudUser, Sio, VerifierCredential};
use seccloud_hash::HmacDrbg;

struct World {
    user: CloudUser,
    cs: VerifierCredential,
    da: VerifierCredential,
    blocks: Vec<DataBlock>,
    stored: Vec<SignedBlock>,
    request: ComputationRequest,
}

fn world(n_items: usize) -> World {
    let sio = Sio::new(b"protocol-bench");
    let user = sio.register("alice");
    let cs = sio.register_verifier("cs");
    let da = sio.register_verifier("da");
    let blocks: Vec<DataBlock> = (0..n_items as u64)
        .map(|i| DataBlock::from_values(i, &[i, i + 1, i + 2]))
        .collect();
    let stored = user.sign_blocks(&blocks, &[cs.public(), da.public()]);
    let request = ComputationRequest::new(
        (0..n_items as u64)
            .map(|i| RequestItem {
                function: ComputeFunction::Sum,
                positions: vec![i],
            })
            .collect(),
    );
    World {
        user,
        cs,
        da,
        blocks,
        stored,
        request,
    }
}

fn commit(w: &World) -> (Commitment, CommitmentSession) {
    CommitmentSession::commit(
        &w.request,
        |pos| w.stored.get(pos as usize),
        w.cs.signer(),
        w.da.public(),
    )
    .expect("blocks present")
}

fn bench_sign_blocks() {
    let mut g = Bench::group("protocol_sign_blocks");
    let w = world(8);
    let serial = g.bench("sign_8_blocks_2_designees", || {
        w.user
            .sign_blocks(&w.blocks, &[w.cs.public(), w.da.public()])
    });
    let parallel = g.bench("sign_8_blocks_2_designees_parallel", || {
        w.user
            .sign_blocks_parallel(&w.blocks, &[w.cs.public(), w.da.public()])
    });
    println!("   -> parallel signing speedup: {:.2}x", serial / parallel);
}

fn bench_commit() {
    let mut g = Bench::group("protocol_commit");
    for &n in &[16usize, 64] {
        let w = world(n);
        g.bench(&format!("commit/{n}"), || commit(&w));
    }
}

fn bench_audit() {
    let mut g = Bench::group("protocol_audit");
    let w = world(64);
    let (commitment, session) = commit(&w);
    for &t in &[1usize, 8, 15] {
        let mut drbg = HmacDrbg::new(b"challenge");
        let challenge = AuditChallenge::sample(&mut drbg, w.request.len(), t);
        let response = session.respond(&challenge).unwrap();
        g.bench(&format!("respond/{t}"), || {
            session.respond(&challenge).unwrap()
        });
        let serial = g.bench(&format!("verify_individual/{t}"), || {
            let outcome = verify_response(
                w.da.key(),
                w.user.public(),
                w.cs.signer_public(),
                &w.request,
                &challenge,
                &commitment,
                &response,
            );
            assert!(outcome.is_valid());
        });
        let parallel = g.bench(&format!("verify_parallel/{t}"), || {
            let outcome = verify_response_parallel(
                w.da.key(),
                w.user.public(),
                w.cs.signer_public(),
                &w.request,
                &challenge,
                &commitment,
                &response,
            );
            assert!(outcome.is_valid());
        });
        println!(
            "   -> parallel audit speedup at t={t}: {:.2}x",
            serial / parallel
        );
        g.bench(&format!("verify_batched/{t}"), || {
            assert!(verify_response_batched(
                w.da.key(),
                w.user.public(),
                w.cs.signer_public(),
                &w.request,
                &challenge,
                &commitment,
                &response,
            ));
        });
    }
}

fn main() {
    bench_sign_blocks();
    bench_commit();
    bench_audit();
}
