//! Fixed-width little-endian multi-limb unsigned integers.

use core::cmp::Ordering;
use core::fmt;

use crate::limb::{adc, mac, sbb};

/// A fixed-width unsigned integer of `N` little-endian 64-bit limbs.
///
/// `Uint` is the value-representation type underneath the prime fields in
/// `seccloud-pairing`; it deliberately provides only the operations
/// Montgomery arithmetic and scalar recoding need. For division and
/// arbitrary-size work use [`crate::ApInt`].
///
/// # Examples
///
/// ```
/// use seccloud_bigint::U256;
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(9);
/// let (sum, carry) = a.overflowing_add(&b);
/// assert_eq!(sum, U256::from_u64(16));
/// assert!(!carry);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const N: usize> {
    limbs: [u64; N],
}

/// 256-bit unsigned integer (4 limbs).
pub type U256 = Uint<4>;
/// 512-bit unsigned integer (8 limbs).
pub type U512 = Uint<8>;

/// Error returned when parsing a [`Uint`] from a hex string fails.
///
/// Produced by [`Uint::from_hex`] when the input is empty, contains a
/// non-hex-digit character, or encodes a value wider than `64·N` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseUintError {
    /// The input string was empty.
    Empty,
    /// The input contained a character that is not a hexadecimal digit.
    InvalidDigit(char),
    /// The value does not fit in the target width.
    Overflow,
}

impl fmt::Display for ParseUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUintError::Empty => write!(f, "empty hex string"),
            ParseUintError::InvalidDigit(c) => write!(f, "invalid hex digit {c:?}"),
            ParseUintError::Overflow => write!(f, "value does not fit in target width"),
        }
    }
}

impl std::error::Error for ParseUintError {}

impl<const N: usize> Uint<N> {
    /// The value `0`.
    pub const ZERO: Self = Self { limbs: [0; N] };

    /// The value `1`.
    pub const ONE: Self = {
        let mut limbs = [0; N];
        limbs[0] = 1;
        Self { limbs }
    };

    /// The maximum representable value (all bits set).
    pub const MAX: Self = Self {
        limbs: [u64::MAX; N],
    };

    /// Number of limbs.
    pub const LIMBS: usize = N;

    /// Creates a value from little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; N]) -> Self {
        Self { limbs }
    }

    /// Creates a value from a single `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0; N];
        limbs[0] = v;
        Self { limbs }
    }

    /// Creates a value from a `u128`.
    ///
    /// # Panics
    ///
    /// Panics if `N < 2`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        let mut limbs = [0; N];
        limbs[0] = v as u64;
        limbs[1] = (v >> 64) as u64;
        Self { limbs }
    }

    /// Returns the little-endian limbs.
    #[inline]
    pub const fn limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    /// Returns a mutable view of the little-endian limbs.
    #[inline]
    pub fn limbs_mut(&mut self) -> &mut [u64; N] {
        &mut self.limbs
    }

    /// Parses a big-endian hexadecimal string (no `0x` prefix, `_`
    /// separators allowed).
    ///
    /// # Errors
    ///
    /// Returns [`ParseUintError`] if the string is empty, contains an invalid
    /// digit, or overflows `64·N` bits.
    pub fn from_hex(s: &str) -> Result<Self, ParseUintError> {
        let digits: Vec<u8> = s
            .chars()
            .filter(|&c| c != '_')
            .map(|c| {
                c.to_digit(16)
                    .map(|d| d as u8)
                    .ok_or(ParseUintError::InvalidDigit(c))
            })
            .collect::<Result<_, _>>()?;
        if digits.is_empty() {
            return Err(ParseUintError::Empty);
        }
        if digits.len() > N * 16 {
            // Tolerate redundant leading zeros.
            let extra = digits.len() - N * 16;
            if digits[..extra].iter().any(|&d| d != 0) {
                return Err(ParseUintError::Overflow);
            }
        }
        let mut limbs = [0u64; N];
        for (i, &d) in digits.iter().rev().enumerate() {
            let limb = i / 16;
            if limb >= N {
                continue; // already checked to be zero
            }
            limbs[limb] |= (d as u64) << (4 * (i % 16));
        }
        Ok(Self { limbs })
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns `true` if the value is odd.
    #[inline]
    pub const fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns bit `i` (little-endian, bit 0 is the least significant).
    ///
    /// Bits at or beyond the width are `false`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        limb < N && (self.limbs[limb] >> off) & 1 == 1
    }

    /// Returns the minimal number of bits needed to represent the value
    /// (`0` for zero).
    pub fn bits(&self) -> usize {
        for i in (0..N).rev() {
            if self.limbs[i] != 0 {
                return 64 * i + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Wrapping addition returning the sum and whether a carry occurred.
    #[inline]
    pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut carry = 0;
        for (i, slot) in out.iter_mut().enumerate() {
            let (l, c) = adc(self.limbs[i], rhs.limbs[i], carry);
            *slot = l;
            carry = c;
        }
        (Self { limbs: out }, carry != 0)
    }

    /// Wrapping subtraction returning the difference and whether a borrow
    /// occurred.
    #[inline]
    pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut borrow = 0;
        for (i, slot) in out.iter_mut().enumerate() {
            let (l, b) = sbb(self.limbs[i], rhs.limbs[i], borrow);
            *slot = l;
            borrow = b;
        }
        (Self { limbs: out }, borrow != 0)
    }

    /// Addition that wraps on overflow.
    #[inline]
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Subtraction that wraps on underflow.
    #[inline]
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(&self, rhs: &Self) -> Option<Self> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    #[inline]
    pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full widening multiplication: returns `(lo, hi)` limbs of the
    /// `2·N`-limb product.
    pub fn widening_mul(&self, rhs: &Self) -> (Self, Self) {
        let mut w = [0u64; 64]; // generous upper bound; only 2N used
        debug_assert!(2 * N <= 64);
        for i in 0..N {
            let mut carry = 0;
            for j in 0..N {
                let (l, c) = mac(w[i + j], self.limbs[i], rhs.limbs[j], carry);
                w[i + j] = l;
                carry = c;
            }
            w[i + N] = carry;
        }
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        lo.copy_from_slice(&w[..N]);
        hi.copy_from_slice(&w[N..2 * N]);
        (Self { limbs: lo }, Self { limbs: hi })
    }

    /// Low half of the product (wrapping multiplication).
    #[inline]
    pub fn wrapping_mul(&self, rhs: &Self) -> Self {
        self.widening_mul(rhs).0
    }

    /// Shifts left by `k` bits, discarding bits shifted out of the width.
    pub fn shl(&self, k: usize) -> Self {
        let mut out = [0u64; N];
        let (limb_shift, bit_shift) = (k / 64, k % 64);
        for i in (0..N).rev() {
            if i < limb_shift {
                continue;
            }
            let src = i - limb_shift;
            let mut v = self.limbs[src] << bit_shift;
            if bit_shift > 0 && src > 0 {
                v |= self.limbs[src - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        Self { limbs: out }
    }

    /// Shifts right by `k` bits.
    pub fn shr(&self, k: usize) -> Self {
        let mut out = [0u64; N];
        let (limb_shift, bit_shift) = (k / 64, k % 64);
        for (i, slot) in out.iter_mut().enumerate() {
            let src = i + limb_shift;
            if src >= N {
                break;
            }
            let mut v = self.limbs[src] >> bit_shift;
            if bit_shift > 0 && src + 1 < N {
                v |= self.limbs[src + 1] << (64 - bit_shift);
            }
            *slot = v;
        }
        Self { limbs: out }
    }

    /// Serializes to big-endian bytes (`8·N` bytes).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * N);
        for i in (0..N).rev() {
            out.extend_from_slice(&self.limbs[i].to_be_bytes());
        }
        out
    }

    /// Deserializes from big-endian bytes.
    ///
    /// Shorter inputs are zero-extended on the left; longer inputs must have
    /// only zero bytes beyond `8·N` or `None` is returned.
    pub fn from_be_bytes(bytes: &[u8]) -> Option<Self> {
        let mut trimmed = bytes;
        while trimmed.len() > 8 * N {
            if trimmed[0] != 0 {
                return None;
            }
            trimmed = &trimmed[1..];
        }
        let mut limbs = [0u64; N];
        for (i, &b) in trimmed.iter().rev().enumerate() {
            limbs[i / 8] |= (b as u64) << (8 * (i % 8));
        }
        Some(Self { limbs })
    }

    /// Interprets the low 64 bits.
    #[inline]
    pub const fn as_u64(&self) -> u64 {
        self.limbs[0]
    }
}

impl<const N: usize> Default for Uint<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> Ord for Uint<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..N).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<const N: usize> PartialOrd for Uint<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> fmt::Debug for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for i in (0..N).rev() {
            write!(f, "{:016x}", self.limbs[i])?;
        }
        Ok(())
    }
}

impl<const N: usize> fmt::Display for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> fmt::LowerHex for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..N).rev() {
            write!(f, "{:016x}", self.limbs[i])?;
        }
        Ok(())
    }
}

impl<const N: usize> From<u64> for Uint<N> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testrand::SplitMix64;

    fn u256(rng: &mut SplitMix64) -> U256 {
        U256::from_limbs(rng.limbs())
    }

    #[test]
    fn hex_round_trip_and_width() {
        let p = U256::from_hex("30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47")
            .unwrap();
        assert_eq!(p.bits(), 254);
        assert_eq!(
            format!("{p:x}"),
            "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47"
        );
    }

    #[test]
    fn hex_rejects_garbage() {
        assert_eq!(U256::from_hex(""), Err(ParseUintError::Empty));
        assert_eq!(U256::from_hex("zz"), Err(ParseUintError::InvalidDigit('z')));
        let wide = "1".repeat(65);
        assert_eq!(U256::from_hex(&wide), Err(ParseUintError::Overflow));
        // 65 digits but leading zero is fine
        let ok = format!("0{}", "1".repeat(64));
        assert!(U256::from_hex(&ok).is_ok());
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = U256::from_hex("0123456789abcdef00000000000000000000000000000000ff00ff00ff00ff00")
            .unwrap();
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), Some(v));
        // Short input zero-extends
        assert_eq!(U256::from_be_bytes(&[0x2a]), Some(U256::from_u64(42)));
        // Long nonzero prefix rejected
        let mut long = vec![1u8];
        long.extend_from_slice(&v.to_be_bytes());
        assert_eq!(U256::from_be_bytes(&long), None);
    }

    #[test]
    fn shifts_match_u128_semantics() {
        let v = U256::from_u128(0x0123_4567_89ab_cdef_u128);
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shl(0), v);
        assert_eq!(v.shr(200), U256::ZERO);
        assert!(U256::ONE.shl(255).bit(255));
        assert_eq!(U256::ONE.shl(256), U256::ZERO);
    }

    #[test]
    fn add_sub_round_trip() {
        let mut rng = SplitMix64(0xB001);
        for _ in 0..256 {
            let a = u256(&mut rng);
            let b = u256(&mut rng);
            let (s, carry) = a.overflowing_add(&b);
            let (back, borrow) = s.overflowing_sub(&b);
            assert_eq!(back, a);
            assert_eq!(carry, borrow);
        }
    }

    #[test]
    fn add_commutes() {
        let mut rng = SplitMix64(0xB002);
        for _ in 0..256 {
            let a = u256(&mut rng);
            let b = u256(&mut rng);
            assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
        }
    }

    #[test]
    fn mul_matches_small_reference() {
        let mut rng = SplitMix64(0xB003);
        for _ in 0..256 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            let (lo, hi) = U256::from_u64(a).widening_mul(&U256::from_u64(b));
            assert_eq!(hi, U256::ZERO);
            let want = (a as u128) * (b as u128);
            assert_eq!(lo, U256::from_u128(want));
        }
    }

    #[test]
    fn mul_distributes_over_add_mod_2_256() {
        let mut rng = SplitMix64(0xB004);
        for _ in 0..256 {
            let a = u256(&mut rng);
            let b = u256(&mut rng);
            let c = u256(&mut rng);
            let left = a.wrapping_mul(&b.wrapping_add(&c));
            let right = a.wrapping_mul(&b).wrapping_add(&a.wrapping_mul(&c));
            assert_eq!(left, right);
        }
    }

    #[test]
    fn ordering_agrees_with_subtraction() {
        let mut rng = SplitMix64(0xB005);
        for _ in 0..256 {
            let a = u256(&mut rng);
            let b = u256(&mut rng);
            let (_, borrow) = a.overflowing_sub(&b);
            assert_eq!(borrow, a < b);
        }
    }

    #[test]
    fn bits_bound() {
        let mut rng = SplitMix64(0xB006);
        for _ in 0..256 {
            let a = u256(&mut rng);
            let n = a.bits();
            assert!(n <= 256);
            if n > 0 {
                assert!(a.bit(n - 1));
                assert!(!a.bit(n));
            }
        }
    }

    #[test]
    fn shl_then_shr_identity_for_small_values() {
        let mut rng = SplitMix64(0xB007);
        for _ in 0..256 {
            let v = rng.next_u64();
            let k = rng.below(192) as usize;
            let x = U256::from_u64(v);
            assert_eq!(x.shl(k).shr(k), x);
        }
    }
}
