//! Bad fixture for the `unsafe` rule: an `unsafe` block with no
//! `// SAFETY:` comment justifying it.
//! Never compiled — lexed by the analyzer self-tests only.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
