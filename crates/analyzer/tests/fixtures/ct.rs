//! Bad fixture for the `ct` rule: short-circuiting equality on digest/tag
//! material in verification code.
//! Never compiled — lexed by the analyzer self-tests only.

pub fn verify_tag(tag: &[u8], expected_tag: &[u8]) -> bool {
    tag == expected_tag
}

pub fn verify_root(computed: [u8; 32], root: [u8; 32]) -> bool {
    computed == root
}

pub fn reject_digest(digest: &[u8], claimed: &[u8]) -> bool {
    digest != claimed
}
