//! Deterministic fault injection and property testing for the SecCloud
//! protocol stack — dependency-free, seeded entirely by [`HmacDrbg`].
//!
//! Two halves:
//!
//! * [`fault`] — [`fault::FaultyChannel`], a [`WireTransport`] wrapper that
//!   mangles the byte streams between the DA and a server according to a
//!   seed-deterministic schedule, recording every injected fault in a
//!   [`fault::FaultPlan`] so any run can be replayed exactly from its seed;
//! * [`forall`] + [`gen`] — a minimal property-test runner (no external
//!   `proptest`) with tape-based generators for every wire message and
//!   automatic byte-level shrinking that reports the minimal failing input
//!   together with the seed that reproduces it.
//!
//! The invariant this crate exists to check: under *any* fault schedule,
//! the designated agency either completes a correct audit or returns a
//! typed error / unhealthy verdict — never a panic, never a false pass.
//!
//! [`HmacDrbg`]: seccloud_hash::HmacDrbg
//! [`WireTransport`]: seccloud_cloudsim::rpc::WireTransport
#![forbid(unsafe_code)]

pub mod fault;
pub mod forall;
pub mod gen;
pub mod tape;

pub use fault::{Endpoint, Fault, FaultKind, FaultPlan, FaultyChannel};
pub use forall::{cases_from_env, forall, seed_from_env, Config};
pub use tape::Tape;
