//! Benches for the Table-I primitives: point multiplication, pairing,
//! hash-to-curve, field arithmetic — plus the final-exponentiation and
//! prepared-pairing ablations called out in DESIGN.md.

use seccloud_bench::Bench;
use seccloud_pairing::{
    final_exponentiation, g1_generator_mul, g2_generator_mul, hash_to_g1, hash_to_g2,
    multi_miller_loop, pairing, pairing_prepared, FieldElement, Fp, Fp12, Fp2, Fp6, Fr, G2Prepared,
    G1, G2,
};

fn bench_table1_ops() {
    let mut g = Bench::group("table1");

    let g1 = G1::generator();
    let g2 = G2::generator();
    let k = Fr::hash(b"bench");
    let p = hash_to_g1(b"p").to_affine();
    let q = hash_to_g2(b"q").to_affine();

    g.bench("g1_point_mul", || g1.mul_fr(&k));
    g.bench("g2_point_mul", || g2.mul_fr(&k));
    // Ablation: fixed-base window tables vs generic wNAF for the generator.
    g.bench("g1_generator_mul_fixed_base", || g1_generator_mul(&k));
    g.bench("g2_generator_mul_fixed_base", || g2_generator_mul(&k));
    // Ablation: wNAF windowed multiplication vs plain double-and-add.
    let limbs = *k.to_u256().limbs();
    g.bench("g1_mul_double_and_add", || {
        let mut acc = G1::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if (limbs[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(&g1);
            }
        }
        acc
    });
    g.bench("g1_mul_wnaf", || g1.mul_limbs_wnaf(&limbs));
    let unprepared = g.bench("pairing", || pairing(&p, &q));
    // Ablation: prepared (cached line coefficients) vs unprepared pairing
    // against a fixed G2 argument.
    let q_prep = G2Prepared::from(&q);
    let prepared = g.bench("pairing_prepared", || pairing_prepared(&p, &q_prep));
    println!(
        "   -> prepared speedup vs unprepared: {:.2}x",
        unprepared / prepared
    );
    g.bench("g2_prepare", || G2Prepared::from(&q));
    g.bench("multi_miller_loop_1", || {
        multi_miller_loop(&[(&p, &q_prep)])
    });
    // Ablation: default optimal-ate backend vs the textbook Tate backend.
    g.bench("pairing_tate", || seccloud_pairing::pairing_tate(&p, &q));
    g.bench("hash_to_g1", || hash_to_g1(b"identity"));
    g.bench("hash_to_g2", || hash_to_g2(b"identity"));
}

fn bench_field_tower() {
    let mut g = Bench::group("field_tower");
    let a = Fp::from_hash(b"fp", b"a");
    let b2 = Fp::from_hash(b"fp", b"b");
    g.bench("fp_mul", || a.mul(&b2));
    g.bench("fp_inverse", || a.inverse());
    // Ablation: binary-xgcd vartime inverse vs the constant-time ladder.
    g.bench("fp_inverse_vartime", || a.inverse_vartime());

    let x2 = Fp2::from_hash(b"fp2", b"x");
    let y2 = Fp2::from_hash(b"fp2", b"y");
    g.bench("fp2_mul", || x2.mul(&y2));

    let x12 = Fp12::new(Fp6::new(x2, y2, x2.mul(&y2)), Fp6::new(y2, x2, x2.add(&y2)));
    let y12 = x12.square();
    g.bench("fp12_mul", || x12.mul(&y12));
    g.bench("fp12_square", || x12.square());
    g.bench("fp12_inverse", || x12.inverse());
}

fn bench_final_exp_ablation() {
    // DESIGN.md ablation: how much of the pairing is the Miller loop vs the
    // final exponentiation (whose hard part we run as a plain power).
    let mut g = Bench::group("final_exp_ablation");
    let p = hash_to_g1(b"ablation-p").to_affine();
    let q = hash_to_g2(b"ablation-q").to_affine();
    let miller_value = *pairing(&p, &q).as_fp12(); // any unit works as input

    g.bench("full_pairing", || pairing(&p, &q));
    g.bench("final_exponentiation_only", || {
        final_exponentiation(&miller_value)
    });
}

fn main() {
    bench_table1_ops();
    bench_field_tower();
    bench_final_exp_ablation();
}
