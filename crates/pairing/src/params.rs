//! BN254 curve parameters and runtime-derived constants.
//!
//! The only *transcribed* inputs are the BN parameter `x`, the two moduli
//! (`p`, `r`) and the standard generators; every other constant (trace,
//! `G2` cofactor, final-exponentiation exponent, Frobenius coefficients) is
//! derived from them at first use and cross-checked by tests.

use std::sync::OnceLock;

use seccloud_bigint::ApInt;

use crate::fp::Fp;
use crate::fr::Fr;

/// The BN construction parameter `x = 4965661367192848881`
/// (so `p = 36x⁴ + 36x³ + 24x² + 6x + 1`, `r = 36x⁴ + 36x³ + 18x² + 6x + 1`,
/// `t = 6x² + 1`).
pub const BN_X: u64 = 4_965_661_367_192_848_881;

/// The base-field characteristic `p` as an arbitrary-precision integer.
pub fn p_apint() -> &'static ApInt {
    static P: OnceLock<ApInt> = OnceLock::new();
    P.get_or_init(|| ApInt::from_uint(&Fp::modulus()))
}

/// The group order `r` as an arbitrary-precision integer.
pub fn r_apint() -> &'static ApInt {
    static R: OnceLock<ApInt> = OnceLock::new();
    R.get_or_init(|| ApInt::from_uint(&Fr::modulus()))
}

/// The Frobenius trace `t = 6x² + 1`.
pub fn trace() -> &'static ApInt {
    static T: OnceLock<ApInt> = OnceLock::new();
    T.get_or_init(|| {
        let x = ApInt::from_u64(BN_X);
        &(&(&x * &x) * &ApInt::from_u64(6)) + &ApInt::one()
    })
}

/// The `G2` cofactor `c₂ = p − 1 + t` (so `#E'(Fp2) = c₂ · r`).
pub fn g2_cofactor() -> &'static ApInt {
    static C2: OnceLock<ApInt> = OnceLock::new();
    C2.get_or_init(|| &p_apint().checked_sub(&ApInt::one()).expect("p > 1") + trace())
}

/// The hard part of the final exponentiation, `(p⁴ − p² + 1)/r`.
///
/// The full final exponent factors as
/// `(p¹² − 1)/r = (p⁶ − 1)(p² + 1) · (p⁴ − p² + 1)/r`; the first two factors
/// are applied with cheap Frobenius maps and this value is the remaining
/// genuine exponentiation.
pub fn final_exp_hard_part() -> &'static ApInt {
    static E: OnceLock<ApInt> = OnceLock::new();
    E.get_or_init(|| {
        let p = p_apint();
        let p2 = p * p;
        let p4 = &p2 * &p2;
        let numerator = &p4.checked_sub(&p2).expect("p⁴ > p²") + &ApInt::one();
        let (q, rem) = numerator.divrem(r_apint()).expect("r nonzero");
        assert!(rem.is_zero(), "r must divide p⁴ − p² + 1 for a BN curve");
        q
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bn_polynomial_identities() {
        // p and r must satisfy the BN parameterization in terms of x.
        let x = ApInt::from_u64(BN_X);
        let x2 = &x * &x;
        let x3 = &x2 * &x;
        let x4 = &x3 * &x;
        let c36x4 = &x4 * &ApInt::from_u64(36);
        let c36x3 = &x3 * &ApInt::from_u64(36);
        let c6x = &x * &ApInt::from_u64(6);

        let p_expected =
            &(&(&c36x4 + &c36x3) + &(&x2 * &ApInt::from_u64(24))) + &(&c6x + &ApInt::one());
        assert_eq!(&p_expected, p_apint(), "p = 36x⁴+36x³+24x²+6x+1");

        let r_expected =
            &(&(&c36x4 + &c36x3) + &(&x2 * &ApInt::from_u64(18))) + &(&c6x + &ApInt::one());
        assert_eq!(&r_expected, r_apint(), "r = 36x⁴+36x³+18x²+6x+1");

        // r = p + 1 − t
        let r_from_trace = &p_apint().checked_sub(trace()).expect("p > t") + &ApInt::one();
        assert_eq!(&r_from_trace, r_apint());
    }

    #[test]
    fn moduli_are_prime() {
        let mut state = 0xabcdef12345678u64;
        let mut entropy = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        assert!(seccloud_bigint::is_probable_prime(
            p_apint(),
            16,
            &mut entropy
        ));
        assert!(seccloud_bigint::is_probable_prime(
            r_apint(),
            16,
            &mut entropy
        ));
    }

    #[test]
    fn final_exponent_reconstructs() {
        // hard · r = p⁴ − p² + 1
        let p = p_apint();
        let p2 = p * p;
        let p4 = &p2 * &p2;
        let want = &p4.checked_sub(&p2).unwrap() + &ApInt::one();
        assert_eq!(&(final_exp_hard_part() * r_apint()), &want);
    }

    #[test]
    fn cofactor_magnitude_is_plausible() {
        // Hasse over Fp2: #E'(Fp2) = c₂·r must be within 2p of p² + 1.
        let n2 = g2_cofactor() * r_apint();
        let p = p_apint();
        let p2_plus_1 = &(p * p) + &ApInt::one();
        let diff = if n2 > p2_plus_1 {
            n2.checked_sub(&p2_plus_1).unwrap()
        } else {
            p2_plus_1.checked_sub(&n2).unwrap()
        };
        assert!(diff < &ApInt::from_u64(2) * p, "Hasse bound over Fp²");
    }
}
