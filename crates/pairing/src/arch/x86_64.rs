//! The x86_64 accelerated backend: the [`super::generic`] algorithms
//! recompiled with `#[target_feature(enable = "bmi2,adx")]` so LLVM can
//! lower the `mac`/`adc` carry chains to MULX + ADCX/ADOX (two independent
//! carry flags, no flag-renaming stalls).
//!
//! This is the **only** module in the crate allowed to contain `unsafe`
//! (the crate root is `#![deny(unsafe_code)]`; seccloud-lint enforces that
//! the allowance extends to exactly this file). The unsafety is confined to
//! `#[target_feature]` monomorphisations of already-tested safe code: no
//! raw pointers, no assembly, no transmutes. Every public wrapper
//! re-checks [`supported`] and falls back to the portable generic backend,
//! so even a forced `SECCLOUD_ARCH=x86_64` on a CPU without BMI2/ADX stays
//! sound (it just runs at generic speed).

use std::sync::OnceLock;

use super::generic;

/// Whether this CPU supports the BMI2 + ADX features the accelerated
/// kernels are compiled for. Detection is cached after the first call.
pub fn supported() -> bool {
    static SUPPORTED: OnceLock<bool> = OnceLock::new();
    *SUPPORTED.get_or_init(|| {
        std::arch::is_x86_feature_detected!("bmi2") && std::arch::is_x86_feature_detected!("adx")
    })
}

/// Montgomery product on the BMI2/ADX code path.
#[inline]
pub fn mont_mul(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4], inv: u64) -> [u64; 4] {
    if supported() {
        // SAFETY: `supported()` just verified the CPU reports BMI2 and ADX,
        // the exact features `mont_mul_adx` is compiled for.
        unsafe { mont_mul_adx(a, b, m, inv) }
    } else {
        generic::mont_mul(a, b, m, inv)
    }
}

/// `Fp2` lazy-reduction product on the BMI2/ADX code path.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn fp2_mul(
    a0: &[u64; 4],
    a1: &[u64; 4],
    b0: &[u64; 4],
    b1: &[u64; 4],
    m: &[u64; 4],
    m2: &[u64; 8],
    inv: u64,
) -> ([u64; 4], [u64; 4]) {
    if supported() {
        // SAFETY: `supported()` just verified the CPU reports BMI2 and ADX,
        // the exact features `fp2_mul_adx` is compiled for.
        unsafe { fp2_mul_adx(a0, a1, b0, b1, m, m2, inv) }
    } else {
        generic::fp2_mul(a0, a1, b0, b1, m, m2, inv)
    }
}

/// `Fp2` square on the BMI2/ADX code path.
#[inline]
pub fn fp2_sqr(a0: &[u64; 4], a1: &[u64; 4], m: &[u64; 4], inv: u64) -> ([u64; 4], [u64; 4]) {
    if supported() {
        // SAFETY: `supported()` just verified the CPU reports BMI2 and ADX,
        // the exact features `fp2_sqr_adx` is compiled for.
        unsafe { fp2_sqr_adx(a0, a1, m, inv) }
    } else {
        generic::fp2_sqr(a0, a1, m, inv)
    }
}

// --- target_feature monomorphisations --------------------------------------
//
// Each function below simply calls the corresponding `generic` kernel; as
// those are `#[inline(always)]`-chained down to `mac`/`adc`/`sbb`, LLVM
// recompiles the whole carry chain inside the `target_feature` context and
// emits MULX/ADCX/ADOX. No new logic lives here — the instruction selection
// is the entire difference.

/// # Safety
///
/// The CPU must support BMI2 and ADX (checked by callers via [`supported`]).
// SAFETY: declaration-site unsafety only — the body is safe arithmetic; the
// target_feature precondition is discharged by every caller's `supported()`.
#[target_feature(enable = "bmi2,adx")]
unsafe fn mont_mul_adx(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4], inv: u64) -> [u64; 4] {
    generic::mont_mul(a, b, m, inv)
}

/// # Safety
///
/// The CPU must support BMI2 and ADX (checked by callers via [`supported`]).
#[target_feature(enable = "bmi2,adx")]
#[allow(clippy::too_many_arguments)]
// SAFETY: declaration-site unsafety only — the body is safe arithmetic; the
// target_feature precondition is discharged by every caller's `supported()`.
unsafe fn fp2_mul_adx(
    a0: &[u64; 4],
    a1: &[u64; 4],
    b0: &[u64; 4],
    b1: &[u64; 4],
    m: &[u64; 4],
    m2: &[u64; 8],
    inv: u64,
) -> ([u64; 4], [u64; 4]) {
    generic::fp2_mul(a0, a1, b0, b1, m, m2, inv)
}

/// # Safety
///
/// The CPU must support BMI2 and ADX (checked by callers via [`supported`]).
// SAFETY: declaration-site unsafety only — the body is safe arithmetic; the
// target_feature precondition is discharged by every caller's `supported()`.
#[target_feature(enable = "bmi2,adx")]
unsafe fn fp2_sqr_adx(
    a0: &[u64; 4],
    a1: &[u64; 4],
    m: &[u64; 4],
    inv: u64,
) -> ([u64; 4], [u64; 4]) {
    generic::fp2_sqr(a0, a1, m, inv)
}
