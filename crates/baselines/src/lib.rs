//! Baseline signature schemes for the paper's Table II comparison.
//!
//! The paper compares its designated batch verification against three
//! comparators; all are implemented here from scratch on the workspace's
//! own arithmetic so their costs are *measured*, not quoted:
//!
//! | scheme | individual verify | batch verify |
//! |---|---|---|
//! | [`rsa`]   | `n · T_RSA`   | n/a |
//! | [`ecdsa`] | `n · T_ECDSA` | n/a |
//! | [`bgls`]  | `2n · T_pair` | `(n+1) · T_pair` |
//! | SecCloud (in `seccloud-ibs`) | `2n · T_pair` | `2 · T_pair` |
//!
//! # Examples
//!
//! ```
//! use seccloud_baselines::rsa::RsaKeyPair;
//!
//! let key = RsaKeyPair::generate(512, b"doc-seed"); // small key for speed
//! let sig = key.sign(b"message");
//! assert!(key.public().verify(b"message", &sig));
//! assert!(!key.public().verify(b"other", &sig));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgls;
pub mod ecdsa;
pub mod rsa;
