//! Fixture: `std::net` I/O with no socket deadlines.
//!
//! The direct `write_all` on a fresh `TcpStream` must fire, and the read
//! obligation of the generic `read_header` helper must propagate to the
//! call site — the helper itself is not at fault (it cannot set a timeout
//! on an abstract `R: Read`), the caller handing it a raw stream is.

use std::io::Read;
use std::io::Write;
use std::net::TcpStream;

fn read_header<R: Read>(s: &mut R) -> Option<[u8; 8]> {
    let mut buf = [0u8; 8];
    s.read_exact(&mut buf).ok()?;
    Some(buf)
}

pub fn fetch(addr: &str) -> Option<[u8; 8]> {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return None;
    };
    stream.write_all(b"hello").ok()?;
    read_header(&mut stream)
}
