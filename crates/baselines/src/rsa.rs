//! Textbook-hardened RSA signatures (PKCS#1 v1.5-style encoding) built on
//! the workspace's arbitrary-precision integers.
//!
//! Used as the `RSA` row of Table II: verification costs one public-exponent
//! modular exponentiation per signature and admits no batch verification.

use seccloud_bigint::{is_probable_prime, ApInt};
use seccloud_hash::{HmacDrbg, Sha256};

/// Fixed public exponent `e = 2¹⁶ + 1`.
const PUBLIC_EXPONENT: u64 = 65_537;

/// Domain prefix standing in for the DigestInfo ASN.1 header.
const DIGEST_PREFIX: &[u8] = b"seccloud:sha-256:";

/// An RSA public key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: ApInt,
    e: ApInt,
    modulus_bytes: usize,
}

/// An RSA key pair.
#[derive(Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: ApInt,
}

impl std::fmt::Debug for RsaKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RsaKeyPair")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

/// An RSA signature (one modulus-sized integer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaSignature(ApInt);

impl RsaKeyPair {
    /// Generates a key with a modulus of `2·prime_bits` bits,
    /// deterministically from `seed` (HMAC-DRBG; reproducible benches).
    ///
    /// # Panics
    ///
    /// Panics if `prime_bits < 32` — smaller primes make `e | φ(n)` likely
    /// and the scheme meaningless.
    pub fn generate(prime_bits: usize, seed: &[u8]) -> Self {
        assert!(prime_bits >= 32, "prime size too small");
        let mut drbg = HmacDrbg::new(seed);
        let e = ApInt::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = gen_prime(prime_bits, &mut drbg);
            let q = gen_prime(prime_bits, &mut drbg);
            if p == q {
                continue;
            }
            let n = &p * &q;
            let phi = &p.checked_sub(&ApInt::one()).expect("p > 1")
                * &q.checked_sub(&ApInt::one()).expect("q > 1");
            let Some(d) = e.modinv(&phi) else {
                continue; // gcd(e, φ) ≠ 1; rare — resample
            };
            let modulus_bytes = n.bits().div_ceil(8);
            return Self {
                public: RsaPublicKey {
                    n,
                    e,
                    modulus_bytes,
                },
                d,
            };
        }
    }

    /// The public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Signs a message: `EM^d mod n` with deterministic v1.5-style padding.
    pub fn sign(&self, message: &[u8]) -> RsaSignature {
        let em = encode_message(message, self.public.modulus_bytes);
        RsaSignature(em.modpow(&self.d, &self.public.n))
    }
}

impl RsaPublicKey {
    /// Verifies `sig^e mod n == EM(message)`.
    pub fn verify(&self, message: &[u8], sig: &RsaSignature) -> bool {
        if sig.0 >= self.n {
            return false;
        }
        let em = encode_message(message, self.modulus_bytes);
        sig.0.modpow(&self.e, &self.n) == em
    }

    /// The modulus bit length.
    pub fn modulus_bits(&self) -> usize {
        self.n.bits()
    }
}

/// Deterministic EMSA-PKCS1-v1.5-style encoding:
/// `0x00 ‖ 0x01 ‖ 0xFF… ‖ 0x00 ‖ prefix ‖ SHA256(m)`, interpreted big-endian.
fn encode_message(message: &[u8], modulus_bytes: usize) -> ApInt {
    let digest = Sha256::digest(message);
    let payload_len = DIGEST_PREFIX.len() + digest.len();
    assert!(
        modulus_bytes >= payload_len + 11,
        "modulus too small for the digest encoding"
    );
    let mut em = Vec::with_capacity(modulus_bytes);
    em.push(0x00);
    em.push(0x01);
    em.resize(modulus_bytes - payload_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(DIGEST_PREFIX);
    em.extend_from_slice(&digest);
    ApInt::from_be_bytes(&em)
}

/// Draws a `bits`-bit probable prime (top two bits and the low bit forced).
fn gen_prime(bits: usize, drbg: &mut HmacDrbg) -> ApInt {
    loop {
        let mut bytes = drbg.next_bytes(bits.div_ceil(8));
        // Force exact bit length and oddness.
        let excess = bytes.len() * 8 - bits;
        bytes[0] &= 0xffu8 >> excess;
        bytes[0] |= 0xc0u8 >> excess; // top two bits
        let last = bytes.len() - 1;
        bytes[last] |= 1;
        let candidate = ApInt::from_be_bytes(&bytes);
        let mut entropy = || drbg.next_u64();
        if is_probable_prime(&candidate, 24, &mut entropy) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let key = RsaKeyPair::generate(256, b"rsa-test-1");
        assert!(key.public().modulus_bits() >= 511);
        let sig = key.sign(b"hello cloud");
        assert!(key.public().verify(b"hello cloud", &sig));
    }

    #[test]
    fn rejects_wrong_message_and_cross_key() {
        let k1 = RsaKeyPair::generate(256, b"rsa-a");
        let k2 = RsaKeyPair::generate(256, b"rsa-b");
        let sig = k1.sign(b"m");
        assert!(!k1.public().verify(b"m'", &sig));
        assert!(!k2.public().verify(b"m", &sig));
    }

    #[test]
    fn rejects_tampered_signature() {
        let key = RsaKeyPair::generate(256, b"rsa-tamper");
        let sig = key.sign(b"m");
        let bad = RsaSignature(&sig.0 + &ApInt::one());
        assert!(!key.public().verify(b"m", &bad));
        // Out-of-range signatures are rejected outright.
        let huge = RsaSignature(&sig.0 + &key.public().n);
        assert!(!key.public().verify(b"m", &huge));
    }

    #[test]
    fn deterministic_per_seed() {
        let k1 = RsaKeyPair::generate(128, b"same-seed");
        let k2 = RsaKeyPair::generate(128, b"same-seed");
        assert_eq!(k1.public(), k2.public());
        assert_ne!(
            k1.public(),
            RsaKeyPair::generate(128, b"other-seed").public()
        );
    }

    #[test]
    fn signatures_are_deterministic() {
        let key = RsaKeyPair::generate(256, b"det");
        assert_eq!(key.sign(b"m"), key.sign(b"m"));
        assert_ne!(key.sign(b"m"), key.sign(b"n"));
    }

    #[test]
    fn textbook_multiplicative_forgery_is_blocked_by_padding() {
        // σ(m1)·σ(m2) mod n is a valid textbook-RSA signature of m1·m2 but
        // must not verify for any padded message.
        let key = RsaKeyPair::generate(256, b"mult");
        let s1 = key.sign(b"a");
        let s2 = key.sign(b"b");
        let forged = RsaSignature(s1.0.modmul(&s2.0, &key.public().n));
        for m in [b"a".as_slice(), b"b", b"ab"] {
            assert!(!key.public().verify(m, &forged));
        }
    }

    #[test]
    #[should_panic(expected = "prime size too small")]
    fn tiny_keys_rejected() {
        let _ = RsaKeyPair::generate(16, b"x");
    }
}
