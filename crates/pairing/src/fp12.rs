//! The full extension `Fp12 = Fp6[w]/(w² − v)` — the pairing target field.

use std::sync::OnceLock;

use seccloud_bigint::ApInt;

use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::traits::FieldElement;

/// An element `c0 + c1·w` of `Fp12`, where `w² = v`.
///
/// The multiplicative group of `Fp12` contains the order-`r` cyclotomic
/// subgroup `GT` in which pairing values live after final exponentiation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Fp12 {
    /// Coefficient of 1.
    pub c0: Fp6,
    /// Coefficient of `w`.
    pub c1: Fp6,
}

/// `γ = ξ^((p²−1)/6)`, the Frobenius-squared twist coefficient (derived once
/// at runtime — no transcribed table).
fn gamma_p2() -> &'static Fp2 {
    static GAMMA: OnceLock<Fp2> = OnceLock::new();
    GAMMA.get_or_init(|| {
        let p = ApInt::from_uint(&Fp::modulus());
        let e = (&(&p * &p) - &ApInt::one())
            .divrem(&ApInt::from_u64(6))
            .expect("6 is nonzero")
            .0;
        Fp2::xi().pow_limbs(&e.to_le_limbs())
    })
}

/// `γ = ξ^((p−1)/6) = w^(p−1)`, the first-power Frobenius twist coefficient
/// (derived once at runtime — no transcribed table).
fn gamma_p() -> &'static Fp2 {
    static GAMMA: OnceLock<Fp2> = OnceLock::new();
    GAMMA.get_or_init(|| {
        let p = ApInt::from_uint(&Fp::modulus());
        let e = (&p - &ApInt::one())
            .divrem(&ApInt::from_u64(6))
            .expect("6 is nonzero")
            .0;
        Fp2::xi().pow_limbs(&e.to_le_limbs())
    })
}

impl Fp12 {
    /// Creates `c0 + c1·w`.
    pub const fn new(c0: Fp6, c1: Fp6) -> Self {
        Self { c0, c1 }
    }

    /// Embeds an `Fp6` element.
    pub fn from_fp6(v: Fp6) -> Self {
        Self::new(v, Fp6::zero())
    }

    /// Conjugation over `Fp6`: `c0 − c1·w`. Equals the Frobenius power
    /// `x ↦ x^(p⁶)` because `w^(p⁶) = −w`.
    pub fn conjugate(&self) -> Self {
        Self::new(self.c0, self.c1.neg())
    }

    /// The Frobenius power `x ↦ x^(p²)`, computed coefficient-wise with the
    /// derived twist constant `γ = ξ^((p²−1)/6)`.
    pub fn frobenius_p2(&self) -> Self {
        let g1 = *gamma_p2(); // γ¹
        let g2 = g1.square(); // γ²
        let g3 = g2.mul(&g1); // γ³
        let g4 = g2.square(); // γ⁴
        let g5 = g4.mul(&g1); // γ⁵
        Self::new(
            Fp6::new(self.c0.c0, self.c0.c1.mul(&g2), self.c0.c2.mul(&g4)),
            Fp6::new(
                self.c1.c0.mul(&g1),
                self.c1.c1.mul(&g3),
                self.c1.c2.mul(&g5),
            ),
        )
    }

    /// The Frobenius power `x ↦ xᵖ`. In the `w`-basis `x = Σ aⱼ·wʲ`
    /// (`a₀ = c0.c0, a₁ = c1.c0, a₂ = c0.c1, a₃ = c1.c1, a₄ = c0.c2,
    /// a₅ = c1.c2`), each slot maps to `conj(aⱼ)·γʲ` with the derived
    /// `γ = w^(p−1) = ξ^((p−1)/6)`.
    pub fn frobenius_p(&self) -> Self {
        let g1 = *gamma_p(); // γ¹
        let g2 = g1.square(); // γ²
        let g3 = g2.mul(&g1); // γ³
        let g4 = g2.square(); // γ⁴
        let g5 = g4.mul(&g1); // γ⁵
        let a0 = self.c0.c0.conjugate();
        let a1 = self.c1.c0.conjugate().mul(&g1);
        let a2 = self.c0.c1.conjugate().mul(&g2);
        let a3 = self.c1.c1.conjugate().mul(&g3);
        let a4 = self.c0.c2.conjugate().mul(&g4);
        let a5 = self.c1.c2.conjugate().mul(&g5);
        Self::new(Fp6::new(a0, a2, a4), Fp6::new(a1, a3, a5))
    }

    /// Exponentiation by an arbitrary-precision exponent.
    pub fn pow_apint(&self, exp: &ApInt) -> Self {
        self.pow_limbs(&exp.to_le_limbs())
    }

    /// Sparse multiplication by a Miller-loop line value, which in the
    /// `w`-basis populates only slots 0, 1 and 4 — hence the conventional
    /// name. In tower coordinates the line is
    /// `Fp6::from_fp2(a) + Fp6::new(b, c, 0)·w`, i.e. `a + b·w + c·v·w`.
    /// Costs 13 `Fp2` multiplications versus 18 for a full [`mul`].
    ///
    /// [`mul`]: FieldElement::mul
    pub fn mul_by_014(&self, a: &Fp2, b: &Fp2, c: &Fp2) -> Self {
        // Karatsuba over w² = v with both halves of the line sparse:
        // t0 = f0·a (scalar, 3 muls), t1 = f1·(b + c·v) (5 muls),
        // cross = (f0+f1)·((a+b) + c·v) (5 muls).
        let t0 = self.c0.scale(a);
        let t1 = self.c1.mul_by_01(b, c);
        let cross = self.c0.add(&self.c1).mul_by_01(&a.add(b), c);
        Self::new(t0.add(&t1.mul_by_v()), cross.sub(&t0).sub(&t1))
    }

    /// Granger–Scott squaring for elements of the **cyclotomic subgroup**
    /// (those with `x^(p⁶+1) = 1`, i.e. anything that has been through the
    /// easy part of the final exponentiation). Roughly half the cost of a
    /// generic [`FieldElement::square`]; *incorrect* for general elements.
    pub fn cyclotomic_square(&self) -> Self {
        // Decompose into three Fp4 = Fp2[w']/(w'² − ξ) pieces.
        fn fp4_square(a: &Fp2, b: &Fp2) -> (Fp2, Fp2) {
            let t0 = a.square();
            let t1 = b.square();
            let c0 = t1.mul_by_xi().add(&t0);
            let c1 = a.add(b).square().sub(&t0).sub(&t1);
            (c0, c1)
        }

        let z0 = self.c0.c0;
        let z4 = self.c0.c1;
        let z3 = self.c0.c2;
        let z2 = self.c1.c0;
        let z1 = self.c1.c1;
        let z5 = self.c1.c2;

        let (t0, t1) = fp4_square(&z0, &z1);
        let r0 = t0.sub(&z0).double().add(&t0);
        let r1 = t1.add(&z1).double().add(&t1);

        let (t0, t1) = fp4_square(&z2, &z3);
        let (t2, t3) = fp4_square(&z4, &z5);

        let r4 = t0.sub(&z4).double().add(&t0);
        let r5 = t1.add(&z5).double().add(&t1);

        let xi_t3 = t3.mul_by_xi();
        let r2 = xi_t3.add(&z2).double().add(&xi_t3);
        let r3 = t2.sub(&z3).double().add(&t2);

        Self::new(Fp6::new(r0, r4, r3), Fp6::new(r2, r1, r5))
    }

    /// Exponentiation using cyclotomic squarings — only valid for inputs in
    /// the cyclotomic subgroup (used by the final-exponentiation hard
    /// part).
    pub fn cyclotomic_pow(&self, exp: &ApInt) -> Self {
        let bits = exp.bits();
        if bits == 0 {
            return Self::one();
        }
        let mut acc = *self;
        for i in (0..bits - 1).rev() {
            acc = acc.cyclotomic_square();
            if exp.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplies every coefficient by an `Fp` scalar (used when clearing
    /// line denominators). Kept private to the pairing module.
    #[doc(hidden)]
    pub fn scale_fp(&self, k: &Fp) -> Self {
        let k2 = Fp2::from_fp(*k);
        Self::new(self.c0.scale(&k2), self.c1.scale(&k2))
    }
}

impl FieldElement for Fp12 {
    fn zero() -> Self {
        Self::new(Fp6::zero(), Fp6::zero())
    }

    fn one() -> Self {
        Self::new(Fp6::one(), Fp6::zero())
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn add(&self, rhs: &Self) -> Self {
        Self::new(self.c0.add(&rhs.c0), self.c1.add(&rhs.c1))
    }

    fn sub(&self, rhs: &Self) -> Self {
        Self::new(self.c0.sub(&rhs.c0), self.c1.sub(&rhs.c1))
    }

    fn neg(&self) -> Self {
        Self::new(self.c0.neg(), self.c1.neg())
    }

    fn mul(&self, rhs: &Self) -> Self {
        // Karatsuba over w² = v:
        let aa = self.c0.mul(&rhs.c0);
        let bb = self.c1.mul(&rhs.c1);
        let sum = self.c0.add(&self.c1).mul(&rhs.c0.add(&rhs.c1));
        Self::new(aa.add(&bb.mul_by_v()), sum.sub(&aa).sub(&bb))
    }

    fn square(&self) -> Self {
        // Complex squaring: (a + bw)² = a² + b²v + 2ab·w with
        // a² + b²v = (a + b)(a + vb) − ab − v·ab — two Fp6 muls total
        // instead of two squares plus a mul.
        let v0 = self.c0.mul(&self.c1);
        let t = self.c0.add(&self.c1.mul_by_v());
        let c0 = self.c0.add(&self.c1).mul(&t).sub(&v0).sub(&v0.mul_by_v());
        Self::new(c0, v0.double())
    }

    fn inverse(&self) -> Option<Self> {
        // 1/(a + bw) = (a − bw)/(a² − b²v)
        let denom = self.c0.square().sub(&self.c1.square().mul_by_v());
        let denom_inv = denom.inverse()?;
        Some(Self::new(
            self.c0.mul(&denom_inv),
            self.c1.mul(&denom_inv).neg(),
        ))
    }

    fn ct_select(a: &Self, b: &Self, choice: u64) -> Self {
        Self::new(
            Fp6::ct_select(&a.c0, &b.c0, choice),
            Fp6::ct_select(&a.c1, &b.c1, choice),
        )
    }

    fn ct_is_zero(&self) -> u64 {
        self.c0.ct_is_zero() & self.c1.ct_is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_bigint::U256;
    use seccloud_hash::HmacDrbg;

    fn fp2_s(d: &mut HmacDrbg) -> Fp2 {
        let mut fp = || Fp::from_u256(&U256::from_limbs(std::array::from_fn(|_| d.next_u64())));
        Fp2::new(fp(), fp())
    }

    fn fp12(d: &mut HmacDrbg) -> Fp12 {
        Fp12::new(
            Fp6::new(fp2_s(d), fp2_s(d), fp2_s(d)),
            Fp6::new(fp2_s(d), fp2_s(d), fp2_s(d)),
        )
    }

    #[test]
    fn w_squared_is_v() {
        let w = Fp12::new(Fp6::zero(), Fp6::one());
        let v = Fp12::from_fp6(Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero()));
        assert_eq!(w.square(), v);
        // w¹² = v⁶ = ξ² — still in the tower, and w generates the extension.
        let w12 = w.pow_limbs(&[12]);
        let xi2 = Fp12::from_fp6(Fp6::from_fp2(Fp2::xi().square()));
        assert_eq!(w12, xi2);
    }

    #[test]
    fn cyclotomic_square_matches_generic_square_in_subgroup() {
        // Build cyclotomic elements by applying the easy part x^((p⁶−1)(p²+1))
        // to random field elements, then compare squarings.
        let p = ApInt::from_uint(&Fp::modulus());
        let p2 = &p * &p;
        for i in 0..4u32 {
            let raw = sample(100 + i);
            let easy = raw.conjugate().mul(&raw.inverse().expect("nonzero"));
            let cyc = easy.frobenius_p2().mul(&easy);
            // Sanity: cyc^(p⁶+1) = 1 ⇔ conj(cyc) = cyc⁻¹.
            assert_eq!(cyc.conjugate(), cyc.inverse().unwrap(), "in subgroup");
            assert_eq!(
                cyc.cyclotomic_square(),
                cyc.square(),
                "sample {i}: GS square must agree"
            );
            // And powers agree too.
            let e = &p2 + &ApInt::from_u64(12345);
            assert_eq!(cyc.cyclotomic_pow(&e), cyc.pow_apint(&e));
        }
    }

    #[test]
    fn cyclotomic_pow_edge_exponents() {
        let raw = sample(7);
        let easy = raw.conjugate().mul(&raw.inverse().unwrap());
        let cyc = easy.frobenius_p2().mul(&easy);
        assert_eq!(cyc.cyclotomic_pow(&ApInt::zero()), Fp12::one());
        assert_eq!(cyc.cyclotomic_pow(&ApInt::one()), cyc);
        assert_eq!(cyc.cyclotomic_pow(&ApInt::from_u64(2)), cyc.square());
    }

    #[test]
    fn frobenius_p_matches_pow() {
        // x^p computed via pow must equal the coefficient-wise Frobenius,
        // and applying it twice must equal frobenius_p2.
        let p = ApInt::from_uint(&Fp::modulus());
        for i in 0..3u32 {
            let x = sample(40 + i);
            assert_eq!(x.pow_apint(&p), x.frobenius_p(), "sample {i}");
            assert_eq!(x.frobenius_p().frobenius_p(), x.frobenius_p2());
        }
    }

    #[test]
    fn mul_by_014_matches_full_mul() {
        let mut d = HmacDrbg::new(b"fp12-014");
        for _ in 0..12 {
            let f = fp12(&mut d);
            let (a, b, c) = (fp2_s(&mut d), fp2_s(&mut d), fp2_s(&mut d));
            let line = Fp12::new(Fp6::from_fp2(a), Fp6::new(b, c, Fp2::zero()));
            assert_eq!(f.mul_by_014(&a, &b, &c), f.mul(&line));
        }
    }

    #[test]
    fn frobenius_p2_matches_pow() {
        // x^(p²) computed via pow must equal the coefficient-wise Frobenius.
        let p = ApInt::from_uint(&Fp::modulus());
        let p2 = &p * &p;
        for i in 0..3u32 {
            let x = sample(i);
            assert_eq!(x.pow_apint(&p2), x.frobenius_p2(), "sample {i}");
        }
    }

    #[test]
    fn conjugate_matches_pow_p6() {
        let p = ApInt::from_uint(&Fp::modulus());
        let p2 = &p * &p;
        let p6 = &(&p2 * &p2) * &p2;
        let x = sample(7);
        assert_eq!(x.pow_apint(&p6), x.conjugate());
    }

    fn sample(i: u32) -> Fp12 {
        let f = |tag: &str| Fp2::from_hash(tag.as_bytes(), &i.to_be_bytes());
        Fp12::new(
            Fp6::new(f("a"), f("b"), f("c")),
            Fp6::new(f("d"), f("e"), f("f")),
        )
    }

    #[test]
    fn ring_axioms() {
        let mut d = HmacDrbg::new(b"fp12-axioms");
        for _ in 0..12 {
            let (a, b, c) = (fp12(&mut d), fp12(&mut d), fp12(&mut d));
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b.mul(&c)), a.mul(&b).mul(&c));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }
    }

    #[test]
    fn square_and_inverse() {
        let mut d = HmacDrbg::new(b"fp12-sq-inv");
        for _ in 0..12 {
            let a = fp12(&mut d);
            assert_eq!(a.square(), a.mul(&a));
            if let Some(inv) = a.inverse() {
                assert_eq!(a.mul(&inv), Fp12::one());
            } else {
                assert!(a.is_zero());
            }
        }
    }

    #[test]
    fn conjugation_is_multiplicative() {
        let mut d = HmacDrbg::new(b"fp12-conj");
        for _ in 0..12 {
            let (a, b) = (fp12(&mut d), fp12(&mut d));
            assert_eq!(a.mul(&b).conjugate(), a.conjugate().mul(&b.conjugate()));
        }
    }
}
