//! Runtime-dispatched Montgomery arithmetic backends.
//!
//! Every 4×64-limb field operation in this crate bottoms out in ONE of the
//! backends below, selected once per process (or overridden for A/B tests):
//!
//! * [`Backend::Reference`] — the original strict CIOS code, unchanged: a
//!   loop-based Montgomery multiplier and `U256` round-trip add/sub. Kept
//!   as the obviously-correct oracle every other backend is property-tested
//!   against (`tests/arch_equivalence.rs`).
//! * [`Backend::Generic`] — unrolled CIOS with a branchless final subtract,
//!   direct-limb modular add/sub, and *lazy-reduction* `Fp2` kernels that
//!   accumulate 512-bit products and pay a single Montgomery reduction per
//!   output coefficient (bounds proved in `DESIGN.md` §11).
//! * [`Backend::X86_64`] — the same algorithms compiled with
//!   `#[target_feature(enable = "bmi2,adx")]` so LLVM can emit MULX/ADCX/
//!   ADOX carry chains. All `unsafe` is confined to `arch/x86_64.rs` and
//!   each call site re-verifies CPU support (falling back to `Generic`
//!   rather than risking UB if the features are absent).
//!
//! Selection: `SECCLOUD_ARCH=reference|generic|x86_64` overrides; otherwise
//! the best backend the CPU supports is auto-detected. The choice is
//! process-wide because field elements of different backends are freely
//! interchangeable — every backend returns the *canonical* representative
//! (`< p`), so `Eq`/`Hash`/serialization never observe the backend.
//!
//! The contract for every function here: inputs are canonical Montgomery
//! residues (`< m`, little-endian limbs), outputs are canonical Montgomery
//! residues. Lazy (unreduced) intermediate forms never escape a backend.

use std::sync::atomic::{AtomicU8, Ordering};

mod generic;
mod reference;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // the one arch-intrinsics module; see x86_64.rs
mod x86_64;

/// A Montgomery arithmetic backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Strict loop-based CIOS — the cross-check oracle.
    Reference,
    /// Unrolled CIOS + lazy-reduction tower kernels (portable).
    Generic,
    /// `Generic` algorithms compiled for BMI2/ADX (x86_64 only).
    X86_64,
}

impl Backend {
    /// The `SECCLOUD_ARCH` value naming this backend.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Generic => "generic",
            Backend::X86_64 => "x86_64",
        }
    }

    /// Parses a `SECCLOUD_ARCH` value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "reference" => Some(Backend::Reference),
            "generic" => Some(Backend::Generic),
            "x86_64" => Some(Backend::X86_64),
            _ => None,
        }
    }

    /// Every backend usable on this machine (`Reference` and `Generic`
    /// always; `X86_64` only when the CPU reports BMI2 + ADX).
    pub fn available() -> Vec<Backend> {
        let mut v = vec![Backend::Reference, Backend::Generic];
        if x86_64_supported() {
            v.push(Backend::X86_64);
        }
        v
    }
}

/// Whether the accelerated x86_64 backend can actually run here.
pub fn x86_64_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        x86_64::supported()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Process-wide backend selection: 0 = undecided, else `Backend` + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Reference => 1,
        Backend::Generic => 2,
        Backend::X86_64 => 3,
    }
}

fn decode(v: u8) -> Option<Backend> {
    match v {
        1 => Some(Backend::Reference),
        2 => Some(Backend::Generic),
        3 => Some(Backend::X86_64),
        _ => None,
    }
}

/// The backend auto-detection: `SECCLOUD_ARCH` if set and valid, else the
/// fastest backend the CPU supports.
fn detect() -> Backend {
    if let Ok(v) = std::env::var("SECCLOUD_ARCH") {
        if let Some(b) = Backend::parse(&v) {
            return b;
        }
    }
    if x86_64_supported() {
        Backend::X86_64
    } else {
        Backend::Generic
    }
}

/// The currently active backend (detected on first use).
#[inline]
pub fn active() -> Backend {
    // lint: ordering(Relaxed: the flag is the only shared state and every backend returns identical canonical limbs, so a stale read merely repeats detection)
    match decode(ACTIVE.load(Ordering::Relaxed)) {
        Some(b) => b,
        None => {
            let b = detect();
            // lint: ordering(Relaxed: racing detections store the same encoding; nothing else is published through this flag)
            ACTIVE.store(encode(b), Ordering::Relaxed);
            b
        }
    }
}

/// Forces the active backend — for the equivalence suite and the A/B
/// bench, which compare backends within one process. All backends return
/// identical (canonical) values, so concurrent readers stay correct even
/// mid-switch; ordinary code should rely on auto-detection instead.
#[doc(hidden)]
pub fn set_backend(b: Backend) {
    // lint: ordering(Relaxed: bench/test hook; all backends agree on canonical results, so readers mid-switch stay correct)
    ACTIVE.store(encode(b), Ordering::Relaxed);
}

// --- dispatched operations -------------------------------------------------
//
// `m` is the modulus, `m2` its full 512-bit square (for lazy Fp2 kernels),
// `inv` the Montgomery constant `-m⁻¹ mod 2⁶⁴`.

/// Montgomery product `a·b·R⁻¹ mod m` on the active backend.
#[inline]
pub fn mont_mul(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4], inv: u64) -> [u64; 4] {
    mont_mul_with(active(), a, b, m, inv)
}

/// [`mont_mul`] on an explicit backend.
#[inline]
pub fn mont_mul_with(bk: Backend, a: &[u64; 4], b: &[u64; 4], m: &[u64; 4], inv: u64) -> [u64; 4] {
    match bk {
        Backend::Reference => reference::mont_mul(a, b, m, inv),
        Backend::Generic => generic::mont_mul(a, b, m, inv),
        #[cfg(target_arch = "x86_64")]
        Backend::X86_64 => x86_64::mont_mul(a, b, m, inv),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::X86_64 => generic::mont_mul(a, b, m, inv),
    }
}

/// Modular addition `a + b mod m` on the active backend.
#[inline]
pub fn add_mod(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    add_mod_with(active(), a, b, m)
}

/// [`add_mod`] on an explicit backend.
#[inline]
pub fn add_mod_with(bk: Backend, a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    match bk {
        Backend::Reference => reference::add_mod(a, b, m),
        _ => generic::add_mod(a, b, m),
    }
}

/// Modular subtraction `a − b mod m` on the active backend.
#[inline]
pub fn sub_mod(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    sub_mod_with(active(), a, b, m)
}

/// [`sub_mod`] on an explicit backend.
#[inline]
pub fn sub_mod_with(bk: Backend, a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    match bk {
        Backend::Reference => reference::sub_mod(a, b, m),
        _ => generic::sub_mod(a, b, m),
    }
}

/// Modular negation `−a mod m` on the active backend.
#[inline]
pub fn neg_mod(a: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    neg_mod_with(active(), a, m)
}

/// [`neg_mod`] on an explicit backend.
#[inline]
pub fn neg_mod_with(bk: Backend, a: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    match bk {
        Backend::Reference => reference::neg_mod(a, m),
        _ => generic::neg_mod(a, m),
    }
}

/// `Fp2` product `(a0 + a1·u)(b0 + b1·u)` with `u² = −1`, as coefficient
/// limb pairs, on the active backend.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn fp2_mul(
    a0: &[u64; 4],
    a1: &[u64; 4],
    b0: &[u64; 4],
    b1: &[u64; 4],
    m: &[u64; 4],
    m2: &[u64; 8],
    inv: u64,
) -> ([u64; 4], [u64; 4]) {
    fp2_mul_with(active(), a0, a1, b0, b1, m, m2, inv)
}

/// [`fp2_mul`] on an explicit backend.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn fp2_mul_with(
    bk: Backend,
    a0: &[u64; 4],
    a1: &[u64; 4],
    b0: &[u64; 4],
    b1: &[u64; 4],
    m: &[u64; 4],
    m2: &[u64; 8],
    inv: u64,
) -> ([u64; 4], [u64; 4]) {
    match bk {
        Backend::Reference => reference::fp2_mul(a0, a1, b0, b1, m, inv),
        Backend::Generic => generic::fp2_mul(a0, a1, b0, b1, m, m2, inv),
        #[cfg(target_arch = "x86_64")]
        Backend::X86_64 => x86_64::fp2_mul(a0, a1, b0, b1, m, m2, inv),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::X86_64 => generic::fp2_mul(a0, a1, b0, b1, m, m2, inv),
    }
}

/// `Fp2` square `(a0 + a1·u)²` with `u² = −1` on the active backend.
#[inline]
pub fn fp2_sqr(a0: &[u64; 4], a1: &[u64; 4], m: &[u64; 4], inv: u64) -> ([u64; 4], [u64; 4]) {
    fp2_sqr_with(active(), a0, a1, m, inv)
}

/// [`fp2_sqr`] on an explicit backend.
#[inline]
pub fn fp2_sqr_with(
    bk: Backend,
    a0: &[u64; 4],
    a1: &[u64; 4],
    m: &[u64; 4],
    inv: u64,
) -> ([u64; 4], [u64; 4]) {
    match bk {
        Backend::Reference => reference::fp2_sqr(a0, a1, m, inv),
        Backend::Generic => generic::fp2_sqr(a0, a1, m, inv),
        #[cfg(target_arch = "x86_64")]
        Backend::X86_64 => x86_64::fp2_sqr(a0, a1, m, inv),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::X86_64 => generic::fp2_sqr(a0, a1, m, inv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Reference, Backend::Generic, Backend::X86_64] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("neon"), None);
    }

    #[test]
    fn available_always_includes_the_portable_backends() {
        let av = Backend::available();
        assert!(av.contains(&Backend::Reference));
        assert!(av.contains(&Backend::Generic));
    }

    #[test]
    fn active_is_a_valid_backend() {
        // Whatever the environment, the resolved backend must be runnable.
        let b = active();
        assert!(
            Backend::available().contains(&b) || b == Backend::X86_64,
            "active backend {b:?} must exist"
        );
    }
}
