//! # SecCloud
//!
//! A from-scratch Rust reproduction of *"SecCloud: Bridging Secure Storage
//! and Computation in Cloud"* (Wei, Zhu, Cao, Jia, Vasilakos — ICDCS 2010
//! Workshops).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`bigint`] — fixed-width and arbitrary-precision integers.
//! * [`hash`] — SHA-256, HMAC, HMAC-DRBG and the paper's `H`/`H1`/`H2`.
//! * [`pairing`] — the BN254 bilinear pairing (fields, G1/G2, hash-to-curve).
//! * [`merkle`] — Merkle-hash-tree commitments (paper eq. 6, Fig. 3).
//! * [`ibs`] — identity-based + designated-verifier signatures with batch
//!   verification (paper Sections V-B and VI).
//! * [`baselines`] — RSA / ECDSA / BGLS comparators (paper Table II).
//! * [`core`] — the SecCloud protocol: setup, storage audit, computation
//!   commitment + probabilistic sampling audit, and the sampling/cost
//!   analysis (Fig. 4, Theorem 3).
//! * [`cloudsim`] — a simulated cloud (CSP, servers, adversaries, DA) to run
//!   the protocol end-to-end.
//! * [`testkit`] — deterministic fault injection over the wire endpoints
//!   plus a seed-replayable property-test runner with shrinking.
//! * [`resilience`] — the resilient audit runtime: retries with backoff
//!   over a deterministic virtual clock, per-server circuit breakers,
//!   pool-level failover, and adaptive challenge escalation.
//! * [`registry`] — the epoch-sharded multi-tenant user registry with
//!   per-shard Merkle set commitments and cross-user batch verification
//!   fused into a single Miller loop (paper eqs. 8–9 at fleet scale).
//! * [`net`] — the dep-free TCP RPC runtime: length-framed wire protocol
//!   over `std::net` with per-connection deadlines, a reconnect-on-drop
//!   client transport, and a seeded socket-level chaos proxy.
//!
//! # Quickstart
//!
//! ```
//! use seccloud::core::{Sio, SystemParams};
//!
//! // The System Initialization Operator generates system parameters and
//! // issues identity keys (paper Section V-A).
//! let sio = Sio::new(b"seccloud quickstart seed");
//! let user = sio.register("alice@example.com");
//! let server = sio.register_verifier("cs-01.cloud.example");
//! assert_eq!(user.identity(), "alice@example.com");
//! assert_eq!(server.identity(), "cs-01.cloud.example");
//! # let _ = SystemParams::clone(sio.params());
//! ```
#![forbid(unsafe_code)]

pub use seccloud_baselines as baselines;
pub use seccloud_bigint as bigint;
pub use seccloud_cloudsim as cloudsim;
pub use seccloud_core as core;
pub use seccloud_hash as hash;
pub use seccloud_ibs as ibs;
pub use seccloud_merkle as merkle;
pub use seccloud_net as net;
pub use seccloud_pairing as pairing;
pub use seccloud_registry as registry;
pub use seccloud_resilience as resilience;
pub use seccloud_testkit as testkit;
