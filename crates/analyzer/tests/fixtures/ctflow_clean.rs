//! Clean twin of `ctflow_bad.rs`: the same secret type handled through
//! constant-time comparisons, masked selects, and an explicit declassify.

// lint: secret
pub struct UserKey {
    sk: u64,
}

impl Drop for UserKey {
    fn drop(&mut self) {}
}

/// Constant-time comparison (sanitizer): the verdict is public.
fn ct_eq(a: u64, b: u64) -> bool {
    a == b
}

pub fn check_tag(k: &UserKey, tag: u64) -> bool {
    ct_eq(k.sk, tag)
}

/// Masked select: data-independent control flow, taint stays in the value.
pub fn select(k: &UserKey, a: u64, b: u64) -> u64 {
    let mask = (k.sk & 1).wrapping_neg();
    (a & !mask) | (b & mask)
}

/// Publication of a secret-derived bit is a protocol-level decision.
pub fn audit_parity(k: &UserKey) -> bool {
    // lint: declassify(the parity bit is published in the audit header by design)
    k.sk & 1 == 1
}
