//! The quadratic extension `Fp2 = Fp[u]/(u² + 1)`.

use crate::fp::Fp;
use crate::traits::FieldElement;
use seccloud_bigint::U256;

/// An element `c0 + c1·u` of `Fp2`, where `u² = −1`.
///
/// `Fp2` is the coordinate field of the sextic twist `E'` hosting `G2`.
///
/// # Examples
///
/// ```
/// use seccloud_pairing::{Fp, Fp2, FieldElement};
/// let u = Fp2::new(Fp::zero(), Fp::one());
/// assert_eq!(u.square(), Fp2::from_u64(1).neg()); // u² = −1
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Fp2 {
    /// The `Fp` coefficient of 1.
    pub c0: Fp,
    /// The `Fp` coefficient of `u`.
    pub c1: Fp,
}

impl Fp2 {
    /// Creates `c0 + c1·u`.
    pub const fn new(c0: Fp, c1: Fp) -> Self {
        Self { c0, c1 }
    }

    /// Embeds a small integer.
    pub fn from_u64(v: u64) -> Self {
        Self::new(Fp::from_u64(v), Fp::zero())
    }

    /// Embeds an `Fp` element.
    pub fn from_fp(v: Fp) -> Self {
        Self::new(v, Fp::zero())
    }

    /// The non-residue `ξ = 9 + u` used to build `Fp6 = Fp2[v]/(v³ − ξ)`.
    pub fn xi() -> Self {
        Self::new(Fp::from_u64(9), Fp::one())
    }

    /// Multiplies by the non-residue `ξ = 9 + u` without a full `Fp2`
    /// multiplication: `(c0 + c1·u)(9 + u) = (9c0 − c1) + (9c1 + c0)·u`,
    /// with `9x` computed as `8x + x` by doublings.
    pub fn mul_by_xi(&self) -> Self {
        let nine = |x: &Fp| x.double().double().double().add(x);
        Self::new(nine(&self.c0).sub(&self.c1), nine(&self.c1).add(&self.c0))
    }

    /// Complex conjugation `c0 − c1·u`; equals the Frobenius map `x ↦ xᵖ`
    /// because `uᵖ = −u` (as `p ≡ 3 mod 4`).
    pub fn conjugate(&self) -> Self {
        Self::new(self.c0, self.c1.neg())
    }

    /// Multiplies by an `Fp` scalar.
    pub fn scale(&self, k: &Fp) -> Self {
        Self::new(self.c0.mul(k), self.c1.mul(k))
    }

    /// Norm `c0² + c1²` (an `Fp` element).
    pub fn norm(&self) -> Fp {
        self.c0.square().add(&self.c1.square())
    }

    /// Multiplicative inverse via [`Fp::inverse_vartime`] on the norm —
    /// **variable-time**, for *public* operands only (Miller-loop slopes,
    /// affine conversions of public points).
    pub fn inverse_vartime(&self) -> Option<Self> {
        let norm_inv = self.norm().inverse_vartime()?;
        Some(Self::new(
            self.c0.mul(&norm_inv),
            self.c1.mul(&norm_inv).neg(),
        ))
    }

    /// Computes a square root if one exists (`p ≡ 3 mod 4` algorithm of
    /// Adj–Rodríguez-Henríquez); the result is always verified by squaring,
    /// so a `Some` return is trustworthy by construction.
    pub fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        // a1 = a^((p-3)/4)
        let e = Fp::modulus().wrapping_sub(&U256::from_u64(3)).shr(2);
        let a1 = self.pow_limbs(e.limbs());
        let x0 = a1.mul(self);
        let alpha = a1.mul(&x0);
        let candidate = if alpha == Self::from_u64(1).neg() {
            // x = u·x0
            Self::new(x0.c1.neg(), x0.c0)
        } else {
            // b = (1 + α)^((p-1)/2); x = b·x0
            let e = Fp::modulus().wrapping_sub(&U256::ONE).shr(1);
            let b = Self::from_u64(1).add(&alpha).pow_limbs(e.limbs());
            b.mul(&x0)
        };
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }

    /// Maps arbitrary bytes to a near-uniform `Fp2` element.
    pub fn from_hash(domain: &[u8], msg: &[u8]) -> Self {
        let wide = seccloud_hash::hash_to_int_bytes(domain, msg, 128);
        Self::new(
            Fp::from_bytes_wide(&wide[..64]),
            Fp::from_bytes_wide(&wide[64..]),
        )
    }

    /// Serializes to 64 canonical big-endian bytes (`c0 ‖ c1`).
    pub fn to_be_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.c0.to_be_bytes());
        out[32..].copy_from_slice(&self.c1.to_be_bytes());
        out
    }

    /// Parses 64 canonical big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 64]) -> Option<Self> {
        let c0 = Fp::from_be_bytes(bytes[..32].try_into().expect("32 bytes"))?;
        let c1 = Fp::from_be_bytes(bytes[32..].try_into().expect("32 bytes"))?;
        Some(Self::new(c0, c1))
    }
}

impl FieldElement for Fp2 {
    fn zero() -> Self {
        Self::new(Fp::zero(), Fp::zero())
    }

    fn one() -> Self {
        Self::new(Fp::one(), Fp::zero())
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn add(&self, rhs: &Self) -> Self {
        Self::new(self.c0.add(&rhs.c0), self.c1.add(&rhs.c1))
    }

    fn sub(&self, rhs: &Self) -> Self {
        Self::new(self.c0.sub(&rhs.c0), self.c1.sub(&rhs.c1))
    }

    fn neg(&self) -> Self {
        Self::new(self.c0.neg(), self.c1.neg())
    }

    fn mul(&self, rhs: &Self) -> Self {
        // Karatsuba over u² = −1, delegated whole to the active backend so
        // the lazy-reduction kernels can batch the reductions.
        let (c0, c1) = crate::arch::fp2_mul(
            self.c0.repr(),
            self.c1.repr(),
            rhs.c0.repr(),
            rhs.c1.repr(),
            &Fp::MODULUS,
            &Fp::M2,
            Fp::NEG_INV,
        );
        Self::new(Fp::from_repr_unchecked(c0), Fp::from_repr_unchecked(c1))
    }

    fn square(&self) -> Self {
        // (a + bu)² = (a+b)(a−b) + 2ab·u, on the active backend.
        let (c0, c1) =
            crate::arch::fp2_sqr(self.c0.repr(), self.c1.repr(), &Fp::MODULUS, Fp::NEG_INV);
        Self::new(Fp::from_repr_unchecked(c0), Fp::from_repr_unchecked(c1))
    }

    fn inverse(&self) -> Option<Self> {
        let norm_inv = self.norm().inverse()?;
        Some(Self::new(
            self.c0.mul(&norm_inv),
            self.c1.mul(&norm_inv).neg(),
        ))
    }

    fn ct_select(a: &Self, b: &Self, choice: u64) -> Self {
        Self::new(
            Fp::ct_select(&a.c0, &b.c0, choice),
            Fp::ct_select(&a.c1, &b.c1, choice),
        )
    }

    fn ct_is_zero(&self) -> u64 {
        self.c0.ct_is_zero() & self.c1.ct_is_zero()
    }
}

// Convenience operators.
impl core::ops::Add for Fp2 {
    type Output = Fp2;
    fn add(self, rhs: Fp2) -> Fp2 {
        FieldElement::add(&self, &rhs)
    }
}
impl core::ops::Sub for Fp2 {
    type Output = Fp2;
    fn sub(self, rhs: Fp2) -> Fp2 {
        FieldElement::sub(&self, &rhs)
    }
}
impl core::ops::Mul for Fp2 {
    type Output = Fp2;
    fn mul(self, rhs: Fp2) -> Fp2 {
        FieldElement::mul(&self, &rhs)
    }
}
impl core::ops::Neg for Fp2 {
    type Output = Fp2;
    fn neg(self) -> Fp2 {
        FieldElement::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_hash::HmacDrbg;

    fn fp_rand(d: &mut HmacDrbg) -> Fp {
        Fp::from_u256(&U256::from_limbs(std::array::from_fn(|_| d.next_u64())))
    }

    fn fp2(d: &mut HmacDrbg) -> Fp2 {
        Fp2::new(fp_rand(d), fp_rand(d))
    }

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fp2::new(Fp::zero(), Fp::one());
        assert_eq!(u.square(), Fp2::one().neg());
        assert_eq!(u.mul(&u).mul(&u).mul(&u), Fp2::one());
    }

    #[test]
    fn xi_is_not_a_cube_or_square() {
        // ξ must be a cubic and quadratic non-residue for the tower to be a
        // field; verify ξ^((p²−1)/2) ≠ 1 and ξ^((p²−1)/3) ≠ 1.
        use seccloud_bigint::ApInt;
        let p = ApInt::from_uint(&Fp::modulus());
        let p2m1 = &(&p * &p) - &ApInt::one();
        let xi = Fp2::xi();
        for divisor in [2u64, 3] {
            let (e, rem) = p2m1.divrem(&ApInt::from_u64(divisor)).unwrap();
            assert!(rem.is_zero());
            // pad limbs for pow
            let mut limbs = e.to_be_bytes();
            limbs.reverse(); // little-endian bytes
            let mut le_limbs = vec![0u64; limbs.len().div_ceil(8)];
            for (i, &b) in limbs.iter().enumerate() {
                le_limbs[i / 8] |= (b as u64) << (8 * (i % 8));
            }
            assert_ne!(
                xi.pow_limbs(&le_limbs),
                Fp2::one(),
                "ξ^((p²−1)/{divisor}) = 1"
            );
        }
    }

    #[test]
    fn conjugate_is_frobenius() {
        let a = Fp2::from_hash(b"t", b"frobenius");
        assert_eq!(a.pow_limbs(&Fp::MODULUS), a.conjugate());
    }

    #[test]
    fn sqrt_verified_examples() {
        for i in 0..20u32 {
            let a = Fp2::from_hash(b"sqrt", &i.to_be_bytes());
            let sq = a.square();
            let r = sq.sqrt().expect("squares have roots");
            assert!(r == a || r == a.neg());
        }
    }

    #[test]
    fn field_axioms() {
        let mut d = HmacDrbg::new(b"fp2-axioms");
        for _ in 0..48 {
            let (a, b, c) = (fp2(&mut d), fp2(&mut d), fp2(&mut d));
            assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b.mul(&c)), a.mul(&b).mul(&c));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }
    }

    #[test]
    fn square_matches_mul() {
        let mut d = HmacDrbg::new(b"fp2-sq");
        for _ in 0..48 {
            let a = fp2(&mut d);
            assert_eq!(a.square(), a.mul(&a));
        }
    }

    #[test]
    fn inverse_law() {
        let mut d = HmacDrbg::new(b"fp2-inv");
        for _ in 0..48 {
            let a = fp2(&mut d);
            if let Some(inv) = a.inverse() {
                assert_eq!(a.mul(&inv), Fp2::one());
            } else {
                assert!(a.is_zero());
            }
        }
    }

    #[test]
    fn conjugation_is_multiplicative() {
        let mut d = HmacDrbg::new(b"fp2-conj");
        for _ in 0..48 {
            let (a, b) = (fp2(&mut d), fp2(&mut d));
            assert_eq!(a.mul(&b).conjugate(), a.conjugate().mul(&b.conjugate()));
        }
    }

    #[test]
    fn norm_is_multiplicative() {
        let mut d = HmacDrbg::new(b"fp2-norm");
        for _ in 0..48 {
            let (a, b) = (fp2(&mut d), fp2(&mut d));
            assert_eq!(a.mul(&b).norm(), a.norm().mul(&b.norm()));
        }
    }
}
