//! Clean fixture for the `arith` rule: the same escalation math written
//! with explicit overflow behavior.
//! Never compiled — lexed by the analyzer self-tests only.

pub fn escalate(t: usize, s: u32, n: usize) -> usize {
    let scale = 1usize.checked_shl(s.min(63)).unwrap_or(usize::MAX);
    t.saturating_mul(scale).min(n)
}
