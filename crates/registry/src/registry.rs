//! The sharded multi-tenant user registry.

use std::collections::BTreeMap;

use seccloud_hash::Sha256;
use seccloud_ibs::UserPublic;
use seccloud_merkle::{MerklePath, MerkleTree};

use crate::commit::{CommitmentCheck, ShardCommitment};
use crate::shard::shard_of;

/// Domain prefix for member leaf bytes.
const LEAF_DOMAIN: &[u8] = b"seccloud-registry/member/v1";

/// The well-defined commitment root of a shard with no members (a Merkle
/// tree needs at least one leaf, so the empty set gets a domain-separated
/// constant instead).
fn empty_shard_root(shard: u32, epoch: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"seccloud-registry/empty-shard/v1");
    h.update(&shard.to_be_bytes());
    h.update(&epoch.to_be_bytes());
    h.finalize()
}

/// One enrolled tenant: the public identity data plus the epoch it joined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserRecord {
    public: UserPublic,
    enrolled_epoch: u64,
}

impl UserRecord {
    /// The tenant's public identity data `(ID, Q_ID)`.
    pub fn public(&self) -> &UserPublic {
        &self.public
    }

    /// The epoch this tenant enrolled in.
    pub fn enrolled_epoch(&self) -> u64 {
        self.enrolled_epoch
    }

    /// The canonical committed bytes of this record: domain ‖ id-length ‖
    /// id ‖ compressed `Q_ID` ‖ enrollment epoch. Length-prefixing the
    /// identity keeps distinct records from ever sharing bytes.
    pub fn leaf_bytes(&self) -> Vec<u8> {
        let id = self.public.identity().as_bytes();
        let mut out = Vec::with_capacity(LEAF_DOMAIN.len() + 8 + id.len() + 32 + 8);
        out.extend_from_slice(LEAF_DOMAIN);
        out.extend_from_slice(&(id.len() as u64).to_be_bytes());
        out.extend_from_slice(id);
        out.extend_from_slice(&self.public.q().to_affine().to_compressed());
        out.extend_from_slice(&self.enrolled_epoch.to_be_bytes());
        out
    }
}

/// One shard: its members (sorted by identity — the canonical leaf order)
/// and a lazily cached commitment root.
#[derive(Clone, Debug, Default)]
struct Shard {
    members: BTreeMap<String, UserRecord>,
    /// Cached Merkle root, invalidated by any membership change.
    root: Option<[u8; 32]>,
}

impl Shard {
    /// Computes the shard's Merkle root over its sorted member records.
    fn compute_root(&self, shard: u32, epoch: u64) -> [u8; 32] {
        if self.members.is_empty() {
            return empty_shard_root(shard, epoch);
        }
        let leaves: Vec<Vec<u8>> = self.members.values().map(UserRecord::leaf_bytes).collect();
        let refs: Vec<&[u8]> = leaves.iter().map(Vec::as_slice).collect();
        MerkleTree::from_data_parallel(&refs).root()
    }
}

/// A membership proof: the member's leaf position and authentication path
/// inside its shard's commitment.
#[derive(Clone, Debug)]
pub struct MembershipProof {
    /// The shard the member lives in (this epoch).
    pub shard: u32,
    /// The member's index in the shard's sorted leaf order.
    pub index: usize,
    /// The authentication path to the shard root.
    pub path: MerklePath,
}

/// The epoch-sharded multi-tenant registry (see crate docs).
///
/// # Examples
///
/// ```
/// use seccloud_ibs::UserPublic;
/// use seccloud_registry::UserRegistry;
///
/// let mut reg = UserRegistry::new(4, 0);
/// for name in ["alice", "bob", "carol"] {
///     reg.enroll(UserPublic::from_identity(name));
/// }
/// let commitments = reg.commitments();
/// assert_eq!(commitments.len(), 4);
/// assert!(reg
///     .check_commitment(0, &commitments[0].to_bytes())
///     .is_valid());
/// ```
#[derive(Clone, Debug)]
pub struct UserRegistry {
    epoch: u64,
    shards: Vec<Shard>,
}

impl UserRegistry {
    /// An empty registry with `shards` shards (clamped to ≥ 1) at `epoch`.
    pub fn new(shards: u32, epoch: u64) -> Self {
        Self {
            epoch,
            shards: vec![Shard::default(); shards.max(1) as usize],
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shard count.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Total enrolled tenants across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.members.len()).sum()
    }

    /// Whether no tenant is enrolled.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.members.is_empty())
    }

    /// Member count of one shard (0 for an out-of-range index).
    pub fn shard_len(&self, shard: u32) -> usize {
        self.shards
            .get(shard as usize)
            .map_or(0, |s| s.members.len())
    }

    /// The shard `identity` maps to in the current epoch.
    pub fn shard_of(&self, identity: &str) -> u32 {
        shard_of(identity, self.epoch, self.shard_count())
    }

    /// Enrolls a tenant (idempotent: re-enrolling an identity replaces its
    /// record and keeps the original enrollment epoch only if the public
    /// data is unchanged). Returns the shard it landed in.
    pub fn enroll(&mut self, public: UserPublic) -> u32 {
        let shard = self.shard_of(public.identity());
        let epoch = self.epoch;
        if let Some(s) = self.shards.get_mut(shard as usize) {
            let enrolled_epoch = match s.members.get(public.identity()) {
                Some(existing) if existing.public == public => existing.enrolled_epoch,
                _ => epoch,
            };
            s.members.insert(
                public.identity().to_owned(),
                UserRecord {
                    public,
                    enrolled_epoch,
                },
            );
            s.root = None;
        }
        shard
    }

    /// Removes a tenant; returns its record if it was enrolled.
    pub fn remove(&mut self, identity: &str) -> Option<UserRecord> {
        let shard = self.shard_of(identity);
        let s = self.shards.get_mut(shard as usize)?;
        let removed = s.members.remove(identity);
        if removed.is_some() {
            s.root = None;
        }
        removed
    }

    /// The record for `identity`, if enrolled.
    pub fn get(&self, identity: &str) -> Option<&UserRecord> {
        self.shards
            .get(self.shard_of(identity) as usize)?
            .members
            .get(identity)
    }

    /// Iterates one shard's members in canonical (sorted) order.
    pub fn shard_members(&self, shard: u32) -> impl Iterator<Item = &UserRecord> {
        self.shards
            .get(shard as usize)
            .into_iter()
            .flat_map(|s| s.members.values())
    }

    /// The commitment of one shard, computing (and caching) the root if
    /// the member set changed since the last call. Out-of-range: `None`.
    pub fn commitment(&mut self, shard: u32) -> Option<ShardCommitment> {
        let epoch = self.epoch;
        let s = self.shards.get_mut(shard as usize)?;
        let root = match s.root {
            Some(root) => root,
            None => {
                let root = s.compute_root(shard, epoch);
                s.root = Some(root);
                root
            }
        };
        Some(ShardCommitment { shard, epoch, root })
    }

    /// All shard commitments, recomputing dirty roots in parallel over
    /// [`seccloud_parallel::num_threads`] workers (each shard's tree build
    /// is independent).
    pub fn commitments(&mut self) -> Vec<ShardCommitment> {
        let epoch = self.epoch;
        seccloud_parallel::parallel_map_mut(&mut self.shards, |i, s| {
            let shard = i as u32;
            let root = match s.root {
                Some(root) => root,
                None => {
                    let root = s.compute_root(shard, epoch);
                    s.root = Some(root);
                    root
                }
            };
            ShardCommitment { shard, epoch, root }
        })
    }

    /// Checks a presented commitment (as wire bytes) against the
    /// registry's own view of `shard`, reporting exactly which binding
    /// failed — shard, epoch or root. This is the DA-side defence against
    /// stale-epoch replays and cross-shard swaps of otherwise-valid
    /// commitments. Asking about a shard index the registry does not have
    /// is classified as [`CommitmentCheck::UnknownShard`] — a routing
    /// fault at the caller, distinct from a swap between two real shards
    /// — before any field of the presented bytes is compared.
    pub fn check_commitment(&self, shard: u32, bytes: &[u8]) -> CommitmentCheck {
        let Some(s) = self.shards.get(shard as usize) else {
            return CommitmentCheck::UnknownShard { shard };
        };
        let Some(presented) = ShardCommitment::from_bytes(bytes) else {
            return CommitmentCheck::Malformed;
        };
        if presented.shard != shard {
            return CommitmentCheck::WrongShard {
                presented: presented.shard,
            };
        }
        if presented.epoch != self.epoch {
            return CommitmentCheck::WrongEpoch {
                presented: presented.epoch,
            };
        }
        let expected = s.root.unwrap_or_else(|| s.compute_root(shard, self.epoch));
        if expected == presented.root {
            CommitmentCheck::Valid
        } else {
            CommitmentCheck::WrongRoot
        }
    }

    /// Rotates to the next epoch: every tenant is re-dealt to its new
    /// shard (the assignment hash depends on the epoch) and every root
    /// cache is invalidated. Returns the new epoch.
    pub fn rotate_epoch(&mut self) -> u64 {
        self.epoch = self.epoch.wrapping_add(1);
        let epoch = self.epoch;
        let shards = self.shard_count();
        let mut redealt = vec![Shard::default(); shards as usize];
        for shard in std::mem::take(&mut self.shards) {
            for (identity, record) in shard.members {
                let target = shard_of(&identity, epoch, shards) as usize;
                if let Some(s) = redealt.get_mut(target) {
                    s.members.insert(identity, record);
                }
            }
        }
        self.shards = redealt;
        self.epoch
    }

    /// Produces a membership proof for `identity` against its shard's
    /// current commitment (rebuilding the shard tree — proofs are a
    /// dispute path, not a hot path). `None` if not enrolled.
    pub fn prove_member(&self, identity: &str) -> Option<MembershipProof> {
        let shard = self.shard_of(identity);
        let s = self.shards.get(shard as usize)?;
        let index = s.members.keys().position(|k| k == identity)?;
        let leaves: Vec<Vec<u8>> = s.members.values().map(UserRecord::leaf_bytes).collect();
        let refs: Vec<&[u8]> = leaves.iter().map(Vec::as_slice).collect();
        let path = MerkleTree::from_data_parallel(&refs).prove(index)?;
        Some(MembershipProof { shard, index, path })
    }

    /// Verifies a membership proof against a shard commitment: the record
    /// must hash to a leaf authenticated under the commitment's root.
    pub fn verify_member(
        commitment: &ShardCommitment,
        record: &UserRecord,
        proof: &MembershipProof,
    ) -> bool {
        proof.shard == commitment.shard
            && proof
                .path
                .verify(&commitment.root, &record.leaf_bytes(), proof.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(n: u32, shards: u32, epoch: u64) -> UserRegistry {
        let mut reg = UserRegistry::new(shards, epoch);
        for i in 0..n {
            reg.enroll(UserPublic::from_identity(&format!("user-{i}")));
        }
        reg
    }

    #[test]
    fn enrollment_lands_in_the_assigned_shard() {
        let reg = populated(32, 4, 0);
        assert_eq!(reg.len(), 32);
        for i in 0..32 {
            let id = format!("user-{i}");
            let record = reg.get(&id).expect("enrolled");
            assert_eq!(record.public().identity(), id);
            assert_eq!(record.enrolled_epoch(), 0);
        }
        let total: usize = (0..4).map(|s| reg.shard_len(s)).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn re_enrollment_is_idempotent() {
        let mut reg = populated(4, 2, 3);
        let before = reg.len();
        reg.enroll(UserPublic::from_identity("user-1"));
        assert_eq!(reg.len(), before);
        assert_eq!(
            reg.get("user-1").expect("enrolled").enrolled_epoch(),
            3,
            "unchanged public data keeps the original enrollment epoch"
        );
    }

    #[test]
    fn commitments_are_deterministic_and_change_with_membership() {
        let mut a = populated(16, 4, 0);
        let mut b = populated(16, 4, 0);
        assert_eq!(a.commitments(), b.commitments());
        b.enroll(UserPublic::from_identity("late-joiner"));
        let sa = a.commitments();
        let sb = b.commitments();
        let changed = sa.iter().zip(&sb).filter(|(x, y)| x != y).count();
        assert_eq!(changed, 1, "exactly the joined shard's root moves");
    }

    #[test]
    fn empty_shards_have_distinct_stable_roots() {
        let mut reg = UserRegistry::new(3, 7);
        let c = reg.commitments();
        assert_eq!(c.len(), 3);
        assert_ne!(c[0].root, c[1].root, "empty roots are shard-bound");
        assert_eq!(reg.commitments(), c);
    }

    #[test]
    fn check_commitment_classifies_every_fault() {
        let mut reg = populated(24, 4, 5);
        let commitments = reg.commitments();
        let c0 = &commitments[0];
        assert!(reg.check_commitment(0, &c0.to_bytes()).is_valid());
        assert_eq!(reg.check_commitment(0, b"junk"), CommitmentCheck::Malformed);
        // Cross-shard swap: shard 1's commitment presented for shard 0.
        assert_eq!(
            reg.check_commitment(0, &commitments[1].to_bytes()),
            CommitmentCheck::WrongShard { presented: 1 }
        );
        // Stale epoch: same shard, earlier epoch.
        let stale = ShardCommitment {
            epoch: c0.epoch - 1,
            ..*c0
        };
        assert_eq!(
            reg.check_commitment(0, &stale.to_bytes()),
            CommitmentCheck::WrongEpoch { presented: 4 }
        );
        // Tampered member set: right shard and epoch, wrong root.
        let forged = ShardCommitment {
            root: [0xEE; 32],
            ..*c0
        };
        assert_eq!(
            reg.check_commitment(0, &forged.to_bytes()),
            CommitmentCheck::WrongRoot
        );
        // Asking about a shard the registry does not have is a routing
        // fault, not a cross-shard swap — even with perfectly valid bytes,
        // and even with malformed bytes (the shard bound is checked
        // first).
        assert_eq!(
            reg.check_commitment(9, &c0.to_bytes()),
            CommitmentCheck::UnknownShard { shard: 9 }
        );
        assert_eq!(
            reg.check_commitment(9, b"junk"),
            CommitmentCheck::UnknownShard { shard: 9 }
        );
    }

    #[test]
    fn rotation_redeals_and_rebinds_commitments() {
        let mut reg = populated(64, 8, 0);
        let before = reg.commitments();
        let epoch = reg.rotate_epoch();
        assert_eq!(epoch, 1);
        assert_eq!(reg.len(), 64, "rotation preserves the population");
        let after = reg.commitments();
        assert!(
            before.iter().zip(&after).all(|(b, a)| b != a),
            "every shard's commitment is rebound to the new epoch"
        );
        // Yesterday's commitments are now stale everywhere.
        for c in &before {
            assert_eq!(
                reg.check_commitment(c.shard, &c.to_bytes()),
                CommitmentCheck::WrongEpoch { presented: 0 }
            );
        }
    }

    #[test]
    fn membership_proofs_verify_and_bind_the_record() {
        let mut reg = populated(20, 4, 2);
        let commitments = reg.commitments();
        let record = reg.get("user-7").expect("enrolled").clone();
        let proof = reg.prove_member("user-7").expect("provable");
        let commitment = commitments
            .iter()
            .find(|c| c.shard == proof.shard)
            .expect("shard committed");
        assert!(UserRegistry::verify_member(commitment, &record, &proof));
        // A different member's record does not verify under this proof.
        let other = reg.get("user-8").expect("enrolled").clone();
        if other.public().identity() != record.public().identity() {
            assert!(!UserRegistry::verify_member(commitment, &other, &proof));
        }
        assert!(reg.prove_member("nobody").is_none());
    }

    #[test]
    fn remove_unenrolls_and_moves_the_root() {
        let mut reg = populated(10, 2, 0);
        let before = reg.commitments();
        let record = reg.remove("user-3").expect("was enrolled");
        assert_eq!(record.public().identity(), "user-3");
        assert!(reg.get("user-3").is_none());
        assert_eq!(reg.len(), 9);
        assert_ne!(reg.commitments(), before);
        assert!(reg.remove("user-3").is_none());
    }
}
