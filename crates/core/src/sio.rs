//! The System Initialization Operator and registered principals
//! (paper Section V-A).

use seccloud_ibs::{MasterKey, SystemParams, UserKey, UserPublic, VerifierKey, VerifierPublic};

/// The System Initialization Operator: holds the master secret `s`, issues
/// identity keys to cloud users and verifiers.
///
/// "In reality, the government or a trusted third party could play the role
/// of SIO" (paper footnote 1); registration is an offline step.
#[derive(Clone, Debug)]
pub struct Sio {
    master: MasterKey,
}

impl Sio {
    /// Sets up the system deterministically from seed bytes.
    pub fn new(seed: &[u8]) -> Self {
        Self {
            master: MasterKey::from_seed(seed),
        }
    }

    /// The published system parameters.
    pub fn params(&self) -> &SystemParams {
        self.master.params()
    }

    /// Registers a cloud user: extracts `sk_ID = s·H1(ID)` (paper eq. 4).
    pub fn register(&self, identity: &str) -> CloudUser {
        CloudUser {
            key: self.master.extract_user(identity),
        }
    }

    /// Registers a verifier principal (cloud server or designated agency).
    ///
    /// Verifiers receive **two** keys: a `G2` verification identity (so
    /// users can designate signatures to them) and a `G1` signing identity
    /// under the same name (so cloud servers can sign commitment roots).
    pub fn register_verifier(&self, identity: &str) -> VerifierCredential {
        VerifierCredential {
            key: self.master.extract_verifier(identity),
            signer: self.master.extract_user(identity),
        }
    }
}

/// A registered cloud user holding its extracted identity key.
#[derive(Clone, Debug)]
pub struct CloudUser {
    pub(crate) key: UserKey,
}

impl CloudUser {
    /// The identity string.
    pub fn identity(&self) -> &str {
        self.key.identity()
    }

    /// The public identity data `(ID, Q_ID)`.
    pub fn public(&self) -> &UserPublic {
        self.key.public()
    }

    /// The underlying signing key.
    pub fn key(&self) -> &UserKey {
        &self.key
    }
}

/// A registered verifier (cloud server or DA) holding a `G2` verification
/// key and a `G1` signing key under the same identity.
#[derive(Clone, Debug)]
pub struct VerifierCredential {
    key: VerifierKey,
    signer: UserKey,
}

impl VerifierCredential {
    /// The identity string.
    pub fn identity(&self) -> &str {
        self.key.identity()
    }

    /// The public verification identity `(ID, Q_V)`.
    pub fn public(&self) -> &VerifierPublic {
        self.key.public()
    }

    /// The verification key (held secret by the verifier).
    pub fn key(&self) -> &VerifierKey {
        &self.key
    }

    /// The signing key used for commitment roots.
    pub fn signer(&self) -> &UserKey {
        &self.signer
    }

    /// The public signing identity (what others use to check root
    /// signatures from this principal).
    pub fn signer_public(&self) -> &UserPublic {
        self.signer.public()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_deterministic_per_seed() {
        let s1 = Sio::new(b"seed");
        let s2 = Sio::new(b"seed");
        assert_eq!(s1.params(), s2.params());
        assert_eq!(s1.register("alice").public(), s2.register("alice").public());
        let s3 = Sio::new(b"different");
        assert_ne!(s1.params(), s3.params());
    }

    #[test]
    fn verifier_has_consistent_dual_identity() {
        let sio = Sio::new(b"dual");
        let cs = sio.register_verifier("cs-01");
        assert_eq!(cs.identity(), "cs-01");
        assert_eq!(cs.signer().identity(), "cs-01");
        assert_eq!(cs.public().identity(), cs.signer_public().identity());
    }

    #[test]
    fn identities_are_distinct_principals() {
        let sio = Sio::new(b"distinct");
        let a = sio.register("alice");
        let b = sio.register("bob");
        assert_ne!(a.public(), b.public());
    }
}
