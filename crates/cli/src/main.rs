//! `seccloud` — a file-based demo CLI for the SecCloud protocol.
//!
//! ```text
//! seccloud setup   --dir state --seed my-system
//! seccloud sign    --dir state --owner alice --verifiers cs,da --in data.bin --out blocks.bin [--block-size 4096]
//! seccloud store   --dir state --server cs --owner alice --bundle blocks.bin
//! seccloud verify  --dir state --server cs --owner alice --verifier da
//! seccloud audit   --dir state --server cs --owner alice --verifier da --function sum [--group 4] [--t 8] [--seed challenge]
//! ```
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use seccloud_cli::{CliError, Workspace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        print_usage();
        return Err(CliError::Usage("missing command".into()));
    };
    let opts = parse_opts(rest)?;
    let dir = PathBuf::from(opt(&opts, "dir")?);

    match command.as_str() {
        "setup" => {
            let ws = Workspace::setup(&dir, opt(&opts, "seed")?)?;
            let _ = ws;
            println!("initialized state dir {}", dir.display());
        }
        "sign" => {
            let ws = Workspace::open(&dir)?;
            let verifiers: Vec<&str> = opt(&opts, "verifiers")?.split(',').collect();
            let block_size = opt_or(&opts, "block-size", "4096")
                .parse()
                .map_err(|_| CliError::Usage("--block-size must be an integer".into()))?;
            let n = ws.sign_file(
                opt(&opts, "owner")?,
                &verifiers,
                &PathBuf::from(opt(&opts, "in")?),
                &PathBuf::from(opt(&opts, "out")?),
                block_size,
            )?;
            println!("signed {n} blocks for verifiers {verifiers:?}");
        }
        "store" => {
            let ws = Workspace::open(&dir)?;
            let (accepted, rejected) = ws.store(
                opt(&opts, "server")?,
                opt(&opts, "owner")?,
                &PathBuf::from(opt(&opts, "bundle")?),
            )?;
            println!("stored {accepted} blocks ({rejected} rejected)");
            if rejected > 0 {
                return Err(CliError::BadBlock(format!(
                    "{rejected} blocks failed authentication"
                )));
            }
        }
        "verify" => {
            let ws = Workspace::open(&dir)?;
            let (checked, failed) = ws.verify_storage(
                opt(&opts, "server")?,
                opt(&opts, "owner")?,
                opt(&opts, "verifier")?,
            )?;
            println!("checked {checked} blocks, {} failed", failed.len());
            if !failed.is_empty() {
                return Err(CliError::BadBlock(format!(
                    "positions {failed:?} failed verification"
                )));
            }
        }
        "audit" => {
            let ws = Workspace::open(&dir)?;
            let group = opt_or(&opts, "group", "4")
                .parse()
                .map_err(|_| CliError::Usage("--group must be an integer".into()))?;
            let t = opt_or(&opts, "t", "8")
                .parse()
                .map_err(|_| CliError::Usage("--t must be an integer".into()))?;
            let (checked, valid) = ws.audit_computation(
                opt(&opts, "server")?,
                opt(&opts, "owner")?,
                opt(&opts, "verifier")?,
                opt(&opts, "function")?,
                group,
                t,
                opt_or(&opts, "seed", "audit-challenge"),
            )?;
            println!(
                "audited {checked} sampled sub-tasks: {}",
                if valid { "VALID" } else { "INVALID" }
            );
            if !valid {
                return Err(CliError::BadBlock("audit failed".into()));
            }
        }
        other => {
            print_usage();
            return Err(CliError::Usage(format!("unknown command {other:?}")));
        }
    }
    Ok(())
}

fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(CliError::Usage(format!("expected --option, got {key:?}")));
        };
        let value = it
            .next()
            .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
        opts.insert(name.to_owned(), value.clone());
    }
    Ok(opts)
}

fn opt<'a>(opts: &'a HashMap<String, String>, name: &str) -> Result<&'a str, CliError> {
    opts.get(name)
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(format!("missing required --{name}")))
}

fn opt_or<'a>(opts: &'a HashMap<String, String>, name: &str, default: &'a str) -> &'a str {
    opts.get(name).map_or(default, String::as_str)
}

fn print_usage() {
    eprintln!(
        "seccloud — SecCloud protocol demo CLI\n\
         \n\
         commands:\n\
         \x20 setup  --dir <d> --seed <s>\n\
         \x20 sign   --dir <d> --owner <id> --verifiers <a,b> --in <file> --out <bundle> [--block-size N]\n\
         \x20 store  --dir <d> --server <id> --owner <id> --bundle <bundle>\n\
         \x20 verify --dir <d> --server <id> --owner <id> --verifier <id>\n\
         \x20 audit  --dir <d> --server <id> --owner <id> --verifier <id> --function <f> [--group N] [--t N] [--seed s]"
    );
}
