//! A dependency-free recursive-descent parser over [`crate::lexer`] tokens.
//!
//! The token-level rules of PR 3 see one line at a time; the
//! interprocedural rules (secret taint flow, transitive panic
//! reachability, unchecked sampling arithmetic, exhaustive wire dispatch)
//! need *structure*: which function a token belongs to, what a call's
//! arguments are, which patterns a `match` covers. This module produces
//! exactly as much structure as those rules consume — items, functions
//! with typed parameter lists, and an expression tree with source lines —
//! and no more (generic arguments are skipped, patterns are kept as
//! token-derived summaries).
//!
//! Parsing is *total*: any construct the grammar does not model is
//! consumed into an [`Expr::Opaque`] node that still records the
//! identifiers inside it, so downstream analyses degrade gracefully
//! instead of going blind. The parser makes progress on every loop
//! iteration and never panics — it is itself subject to the
//! panic-reachability rule it enables (`lint_workspace` parses
//! untrusted-ish bytes from disk).

use crate::lexer::{Tok, TokKind};

/// One parsed source file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// A free function (or trait default method when nested in a trait).
    Fn(FnDecl),
    /// `impl [Trait for] Type { fns }`.
    Impl {
        /// The self type's head identifier (`Writer` for
        /// `wire::Writer<'a>`).
        type_name: String,
        /// The trait's head identifier for trait impls.
        trait_name: Option<String>,
        /// Methods and associated functions.
        fns: Vec<FnDecl>,
        /// 1-based line of the `impl` keyword.
        line: u32,
    },
    /// An inline module with its body.
    Mod {
        /// Module name.
        name: String,
        /// Items inside the module.
        items: Vec<Item>,
        /// Whether the module is gated behind `#[cfg(test)]`.
        is_test: bool,
    },
    /// A struct definition with its fields (named or tuple).
    Struct {
        /// Type name.
        name: String,
        /// `(field name, type text)` pairs; tuple fields are named `0`,
        /// `1`, ….
        fields: Vec<(String, String)>,
        /// Idents listed in `#[derive(...)]`.
        derives: Vec<String>,
        /// 1-based line of the name.
        line: u32,
    },
    /// An enum definition (variants are not modeled).
    Enum {
        /// Type name.
        name: String,
        /// Idents listed in `#[derive(...)]`.
        derives: Vec<String>,
        /// 1-based line of the name.
        line: u32,
    },
    /// `trait Name { fns }` — default method bodies are analyzed.
    Trait {
        /// Trait name.
        name: String,
        /// Method signatures and default bodies.
        fns: Vec<FnDecl>,
    },
    /// Anything else (`use`, `const`, `static`, `type`, macros, …).
    Other,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for receivers; `_` patterns keep their idents
    /// joined by `_`).
    pub name: String,
    /// The declared type, as joined token text (`&mut HmacDrbg`).
    pub ty: String,
}

/// A parsed function: signature plus body expression tree.
#[derive(Debug)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameters in order (`self` first for methods).
    pub params: Vec<Param>,
    /// Return type text, if any (`Result<Self, WireError>`).
    pub ret: Option<String>,
    /// The body block; `None` for trait method signatures.
    pub body: Option<Expr>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn is test-only (`#[test]` / inside `#[cfg(test)]`).
    pub is_test: bool,
}

/// A `match` arm summary.
#[derive(Debug)]
pub struct Arm {
    /// `Path::Segments` referenced by the pattern (e.g.
    /// `["RpcError", "Timeout"]`).
    pub pat_paths: Vec<Vec<String>>,
    /// Lowercase identifiers bound by the pattern.
    pub bindings: Vec<String>,
    /// Whether the pattern is a bare catch-all `_` (no guard).
    pub is_wildcard: bool,
    /// Whether the pattern contains a literal token (`0`, `"ack"`, `'c'`)
    /// — such an arm compares values, not just structure.
    pub has_literal: bool,
    /// Whether the arm carries an `if` guard.
    pub has_guard: bool,
    /// The arm body.
    pub body: Expr,
    /// 1-based line of the pattern.
    pub line: u32,
}

/// The expression tree. Every node carries the 1-based line it starts on.
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` (generic arguments skipped).
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// A literal token.
    Lit {
        /// Exact token text.
        text: String,
        /// Whether the literal is an integer (no `.`/exponent, or an
        /// integer suffix).
        is_int: bool,
        /// Source line.
        line: u32,
    },
    /// `callee(args…)`.
    Call {
        /// The called expression (usually a [`Expr::Path`]).
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `recv.name(args…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments in order (receiver excluded).
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `base.field` (or `.0` tuple access).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name or tuple index.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression (may be a range).
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// A binary operation `lhs op rhs`.
    Binary {
        /// Operator text (`+`, `<<`, `==`, …).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `lhs = rhs` or a compound assignment (`+=`, `<<=`, …).
    Assign {
        /// Operator text (`=`, `+=`, …).
        op: String,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `let pat[: ty] = init;` (plus an optional `else` block).
    Let {
        /// Identifiers bound by the pattern.
        bindings: Vec<String>,
        /// Declared type text, if annotated.
        ty: Option<String>,
        /// Initializer.
        init: Option<Box<Expr>>,
        /// `else { … }` diverging block of a let-else.
        else_block: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `{ stmts… }`.
    Block {
        /// Statements / trailing expression in order.
        stmts: Vec<Expr>,
        /// Source line of the opening brace.
        line: u32,
    },
    /// `if cond { … } [else …]`; `if let` keeps its bindings.
    If {
        /// Condition (the initializer for `if let`).
        cond: Box<Expr>,
        /// Identifiers bound by an `if let` pattern.
        bindings: Vec<String>,
        /// Then-block.
        then_block: Box<Expr>,
        /// Else branch (block or nested `if`).
        else_block: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `match scrutinee { arms… }`.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
        /// Source line.
        line: u32,
    },
    /// `for pat in iter { … }`.
    For {
        /// Loop variable bindings.
        bindings: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body block.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `while cond { … }` / `loop { … }` (cond is `None` for `loop`).
    Loop {
        /// Condition for `while` / `while let`.
        cond: Option<Box<Expr>>,
        /// Identifiers bound by a `while let` pattern.
        bindings: Vec<String>,
        /// Body block.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `|params| body` closures.
    Closure {
        /// Parameter bindings.
        bindings: Vec<String>,
        /// Closure body.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `name!(args…)` — arguments parsed as expressions where possible.
    MacroCall {
        /// Macro name (last path segment).
        name: String,
        /// Parsed arguments (or [`Expr::Opaque`] per unparseable piece).
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// A range `lo..hi` / `lo..=hi` (either side optional).
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `expr as Ty`.
    Cast {
        /// The cast expression.
        expr: Box<Expr>,
        /// Target type text.
        ty: String,
        /// Source line.
        line: u32,
    },
    /// `Path { field: expr, … }` struct literal.
    StructLit {
        /// The struct path segments.
        segs: Vec<String>,
        /// Field initializers.
        fields: Vec<(String, Expr)>,
        /// Source line.
        line: u32,
    },
    /// A grouping node: parentheses, tuples, arrays, `return`/`break`
    /// values, `?`/`&`/`*`/`-`/`!` operands — anything whose children
    /// matter but whose own shape does not.
    Group {
        /// Child expressions.
        children: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// A nested `fn` item inside a block.
    NestedFn(Box<FnDecl>),
    /// Tokens the grammar does not model; identifiers are preserved.
    Opaque {
        /// Identifier tokens seen in the skipped region.
        idents: Vec<String>,
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// The 1-based source line the expression starts on.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Let { line, .. }
            | Expr::Block { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::For { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Closure { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::Range { line, .. }
            | Expr::Cast { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Group { line, .. }
            | Expr::Opaque { line, .. } => *line,
            Expr::NestedFn(f) => f.line,
        }
    }

    /// Visits `self` and every child expression (pre-order), including
    /// nested fn bodies.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
            Expr::Call { callee, args, .. } => {
                callee.walk(visit);
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(visit);
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::Field { base, .. } => base.walk(visit),
            Expr::Index { base, index, .. } => {
                base.walk(visit);
                index.walk(visit);
            }
            Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::Let {
                init, else_block, ..
            } => {
                if let Some(i) = init {
                    i.walk(visit);
                }
                if let Some(e) = else_block {
                    e.walk(visit);
                }
            }
            Expr::Block { stmts, .. } => {
                for s in stmts {
                    s.walk(visit);
                }
            }
            Expr::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                cond.walk(visit);
                then_block.walk(visit);
                if let Some(e) = else_block {
                    e.walk(visit);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.walk(visit);
                for arm in arms {
                    arm.body.walk(visit);
                }
            }
            Expr::For { iter, body, .. } => {
                iter.walk(visit);
                body.walk(visit);
            }
            Expr::Loop { cond, body, .. } => {
                if let Some(c) = cond {
                    c.walk(visit);
                }
                body.walk(visit);
            }
            Expr::Closure { body, .. } => body.walk(visit),
            Expr::MacroCall { args, .. } => {
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(l) = lo {
                    l.walk(visit);
                }
                if let Some(h) = hi {
                    h.walk(visit);
                }
            }
            Expr::Cast { expr, .. } => expr.walk(visit),
            Expr::StructLit { fields, .. } => {
                for (_, e) in fields {
                    e.walk(visit);
                }
            }
            Expr::Group { children, .. } => {
                for c in children {
                    c.walk(visit);
                }
            }
            Expr::NestedFn(f) => {
                if let Some(b) = &f.body {
                    b.walk(visit);
                }
            }
        }
    }
}

/// Parses a lexed token stream into an [`Ast`]. Total: never fails,
/// never panics; unmodeled constructs become [`Expr::Opaque`] /
/// [`Item::Other`].
pub fn parse(toks: &[Tok]) -> Ast {
    let mut p = Parser { toks, pos: 0 };
    Ast {
        items: p.parse_items(false),
    }
}

/// Keywords that terminate pattern/type scans and never act as bindings.
const KEYWORDS: [&str; 24] = [
    "let", "mut", "ref", "if", "else", "match", "while", "for", "loop", "fn", "return", "break",
    "continue", "in", "as", "move", "where", "impl", "dyn", "self", "Self", "pub", "crate",
    "unsafe",
]; // `self` is handled explicitly where it matters

struct Parser<'t> {
    toks: &'t [Tok],
    pos: usize,
}

impl<'t> Parser<'t> {
    fn peek(&self, ahead: usize) -> Option<&'t Tok> {
        self.toks.get(self.pos.saturating_add(ahead))
    }

    fn peek_text(&self, ahead: usize) -> &str {
        self.peek(ahead).map_or("", |t| t.text.as_str())
    }

    fn line(&self) -> u32 {
        self.peek(0)
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.line)
    }

    fn bump(&mut self) -> Option<&'t Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.peek_text(0) == text {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skips one balanced delimiter group (the opener must be current);
    /// counts `<<`/`>>` as two angle brackets when angles are live.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0i64;
        while let Some(t) = self.bump() {
            let txt = t.text.as_str();
            if txt == open {
                depth += 1;
            } else if txt == close {
                depth -= 1;
                if depth <= 0 {
                    return;
                }
            } else if open == "<" {
                match txt {
                    "<<" => depth += 2,
                    ">>" => {
                        depth -= 2;
                        if depth <= 0 {
                            return;
                        }
                    }
                    // An expression-level comparison would derail angle
                    // matching; bail out at statement boundaries.
                    ";" | "{" => return,
                    _ => {}
                }
            }
        }
    }

    /// Skips `#[...]` / `#![...]` returning the idents inside, or `None`
    /// if not at an attribute.
    fn eat_attribute(&mut self) -> Option<Vec<String>> {
        if self.peek_text(0) != "#" {
            return None;
        }
        let bracket_at = if self.peek_text(1) == "[" {
            1
        } else if self.peek_text(1) == "!" && self.peek_text(2) == "[" {
            2
        } else {
            return None;
        };
        self.pos += bracket_at; // at `[`
        let start = self.pos;
        self.skip_balanced("[", "]");
        let idents = self
            .toks
            .get(start..self.pos)
            .unwrap_or_default()
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        Some(idents)
    }

    // --- items ------------------------------------------------------------

    /// Parses items until end of input (`in_block = false`) or a closing
    /// `}` (`in_block = true`, which consumes the brace).
    fn parse_items(&mut self, in_block: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.at_end() {
                return items;
            }
            if in_block && self.eat("}") {
                return items;
            }
            // Attributes: remember derives and test gating for the item.
            let mut derives: Vec<String> = Vec::new();
            let mut is_test_attr = false;
            while let Some(idents) = self.eat_attribute() {
                let has = |s: &str| idents.iter().any(|i| i == s);
                if has("derive") {
                    derives.extend(idents.iter().skip(1).cloned());
                }
                if has("test") && !has("not") {
                    is_test_attr = true;
                }
            }
            // Visibility / misc prefixes.
            while matches!(self.peek_text(0), "pub" | "unsafe" | "async" | "default") {
                self.pos += 1;
                if self.peek_text(0) == "(" {
                    self.skip_balanced("(", ")"); // pub(crate) etc.
                }
            }
            match self.peek_text(0) {
                "fn" => items.push(Item::Fn(self.parse_fn(is_test_attr))),
                "struct" => items.push(self.parse_struct(derives)),
                "enum" | "union" => items.push(self.parse_enum(derives)),
                "impl" => items.push(self.parse_impl(is_test_attr)),
                "mod" => items.push(self.parse_mod(is_test_attr)),
                "trait" => items.push(self.parse_trait(is_test_attr)),
                "use" | "extern" | "const" | "static" | "type" => {
                    self.skip_item_to_semi();
                    items.push(Item::Other);
                }
                "macro_rules" => {
                    // macro_rules! name { ... }
                    while !self.at_end() && self.peek_text(0) != "{" {
                        self.pos += 1;
                    }
                    if self.peek_text(0) == "{" {
                        self.skip_balanced("{", "}");
                    }
                    items.push(Item::Other);
                }
                _ => {
                    // Unknown leading token: make progress.
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips to the `;` ending a simple item, respecting nesting.
    fn skip_item_to_semi(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.bump() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => return,
                _ => {}
            }
        }
    }

    fn parse_struct(&mut self, derives: Vec<String>) -> Item {
        self.pos += 1; // struct
        let line = self.line();
        let name = self.ident_or("?");
        if self.peek_text(0) == "<" {
            self.skip_balanced("<", ">");
        }
        let mut fields = Vec::new();
        if self.peek_text(0) == "(" {
            // Tuple struct: types split at top-level commas.
            let inner = self.delimited_tokens("(", ")");
            for (i, seg) in split_top_level(&inner, ",").into_iter().enumerate() {
                if !seg.is_empty() {
                    fields.push((i.to_string(), join_tokens(seg)));
                }
            }
            self.eat(";");
        } else if self.peek_text(0) == "{" {
            let inner = self.delimited_tokens("{", "}");
            for seg in split_top_level(&inner, ",") {
                // [pub] name : type
                let seg: Vec<&Tok> = seg
                    .iter()
                    .copied()
                    .filter(|t| t.text != "pub")
                    .skip_while(|t| t.text == "(" || t.text == ")" || t.text == "crate")
                    .collect();
                let mut it = seg.iter();
                if let (Some(nm), Some(colon)) = (it.next(), it.next()) {
                    if colon.text == ":" {
                        let ty: Vec<&Tok> = it.copied().collect();
                        fields.push((nm.text.clone(), join_tokens(ty)));
                    }
                }
            }
        } else {
            self.eat(";"); // unit struct
        }
        Item::Struct {
            name,
            fields,
            derives,
            line,
        }
    }

    fn parse_enum(&mut self, derives: Vec<String>) -> Item {
        self.pos += 1; // enum / union
        let line = self.line();
        let name = self.ident_or("?");
        if self.peek_text(0) == "<" {
            self.skip_balanced("<", ">");
        }
        // Skip a possible where clause, then the body.
        while !self.at_end() && self.peek_text(0) != "{" && self.peek_text(0) != ";" {
            self.pos += 1;
        }
        if self.peek_text(0) == "{" {
            self.skip_balanced("{", "}");
        } else {
            self.eat(";");
        }
        Item::Enum {
            name,
            derives,
            line,
        }
    }

    fn parse_mod(&mut self, is_test: bool) -> Item {
        self.pos += 1; // mod
        let name = self.ident_or("?");
        if self.eat(";") {
            return Item::Other;
        }
        if !self.eat("{") {
            return Item::Other;
        }
        let items = self.parse_items(true);
        Item::Mod {
            name,
            items,
            is_test,
        }
    }

    fn parse_trait(&mut self, is_test: bool) -> Item {
        self.pos += 1; // trait
        let name = self.ident_or("?");
        if self.peek_text(0) == "<" {
            self.skip_balanced("<", ">");
        }
        while !self.at_end() && self.peek_text(0) != "{" && self.peek_text(0) != ";" {
            self.pos += 1; // supertraits / where clause
        }
        if !self.eat("{") {
            self.eat(";");
            return Item::Trait {
                name,
                fns: Vec::new(),
            };
        }
        let fns = self.parse_fn_container(is_test);
        Item::Trait { name, fns }
    }

    fn parse_impl(&mut self, is_test: bool) -> Item {
        let line = self.line();
        self.pos += 1; // impl
        if self.peek_text(0) == "<" {
            self.skip_balanced("<", ">");
        }
        // Tokens up to the body: `Type` or `Trait for Type` (+ where).
        let mut head: Vec<&Tok> = Vec::new();
        while let Some(t) = self.peek(0) {
            if t.text == "{" || t.text == "where" {
                break;
            }
            head.push(t);
            self.pos += 1;
        }
        if self.peek_text(0) == "where" {
            while !self.at_end() && self.peek_text(0) != "{" {
                self.pos += 1;
            }
        }
        let (trait_name, type_toks): (Option<String>, Vec<&Tok>) = {
            let mut split = None;
            let mut depth = 0i64;
            for (i, t) in head.iter().enumerate() {
                match t.text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "for" if depth <= 0 => {
                        split = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            match split {
                Some(i) => (
                    head.get(..i).and_then(head_type_name),
                    head.get(i + 1..).map(<[&Tok]>::to_vec).unwrap_or_default(),
                ),
                None => (None, head.clone()),
            }
        };
        let type_name = head_type_name(&type_toks).unwrap_or_else(|| "?".to_string());
        if !self.eat("{") {
            return Item::Other;
        }
        let fns = self.parse_fn_container(is_test);
        Item::Impl {
            type_name,
            trait_name,
            fns,
            line,
        }
    }

    /// Parses the `{ … }` body of an impl/trait (opening brace consumed),
    /// collecting fns and skipping everything else.
    fn parse_fn_container(&mut self, container_is_test: bool) -> Vec<FnDecl> {
        let mut fns = Vec::new();
        loop {
            if self.at_end() || self.eat("}") {
                return fns;
            }
            let mut is_test_attr = container_is_test;
            while let Some(idents) = self.eat_attribute() {
                if idents.iter().any(|i| i == "test") && !idents.iter().any(|i| i == "not") {
                    is_test_attr = true;
                }
            }
            while matches!(self.peek_text(0), "pub" | "unsafe" | "async" | "default") {
                self.pos += 1;
                if self.peek_text(0) == "(" {
                    self.skip_balanced("(", ")");
                }
            }
            match self.peek_text(0) {
                "fn" => fns.push(self.parse_fn(is_test_attr)),
                "const" | "type" => self.skip_item_to_semi(),
                "{" => self.skip_balanced("{", "}"),
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_fn(&mut self, is_test: bool) -> FnDecl {
        let line = self.line();
        self.pos += 1; // fn
        let name = self.ident_or("?");
        if self.peek_text(0) == "<" {
            self.skip_balanced("<", ">");
        }
        let params = if self.peek_text(0) == "(" {
            let inner = self.delimited_tokens("(", ")");
            parse_params(&inner)
        } else {
            Vec::new()
        };
        let ret = if self.eat("->") {
            let mut depth = 0i64;
            let mut ty: Vec<&Tok> = Vec::new();
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    "{" | "where" | ";" if depth <= 0 => break,
                    _ => {}
                }
                ty.push(t);
                self.pos += 1;
            }
            Some(join_tokens(ty))
        } else {
            None
        };
        if self.peek_text(0) == "where" {
            let mut depth = 0i64;
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    "{" | ";" if depth <= 0 => break,
                    _ => {}
                }
                self.pos += 1;
            }
        }
        let body = if self.eat("{") {
            Some(self.parse_block_body(line))
        } else {
            self.eat(";");
            None
        };
        FnDecl {
            name,
            params,
            ret,
            body,
            line,
            is_test,
        }
    }

    fn ident_or(&mut self, fallback: &str) -> String {
        match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => {
                self.pos += 1;
                t.text.clone()
            }
            _ => fallback.to_string(),
        }
    }

    /// Consumes a balanced group (current token must be `open`) and
    /// returns the tokens strictly inside it.
    fn delimited_tokens(&mut self, open: &str, close: &str) -> Vec<&'t Tok> {
        let start = self.pos.saturating_add(1);
        self.skip_balanced(open, close);
        let end = self.pos.saturating_sub(1);
        self.toks
            .get(start..end.max(start))
            .unwrap_or_default()
            .iter()
            .collect()
    }

    // --- statements and expressions ---------------------------------------

    /// Parses statements until the matching `}` (opening brace already
    /// consumed).
    fn parse_block_body(&mut self, line: u32) -> Expr {
        let mut stmts = Vec::new();
        loop {
            if self.at_end() || self.eat("}") {
                return Expr::Block { stmts, line };
            }
            if self.eat(";") {
                continue;
            }
            while self.eat_attribute().is_some() {}
            let before = self.pos;
            match self.peek_text(0) {
                "let" => stmts.push(self.parse_let()),
                "fn" => {
                    self.pos += 1;
                    self.pos = self.pos.saturating_sub(1);
                    stmts.push(Expr::NestedFn(Box::new(self.parse_fn(false))));
                }
                "use" | "const" | "static" | "type" | "extern" => {
                    self.skip_item_to_semi();
                }
                "struct" | "enum" | "impl" | "mod" | "trait" | "macro_rules" => {
                    // Nested items inside fn bodies: reuse the item parser
                    // for one item.
                    let mut sub = Parser {
                        toks: self.toks,
                        pos: self.pos,
                    };
                    let _ = sub.parse_single_item();
                    self.pos = sub.pos.max(self.pos + 1);
                }
                "pub" => {
                    self.pos += 1;
                }
                _ => {
                    let e = self.parse_expr(0, true);
                    stmts.push(e);
                    self.eat(";");
                }
            }
            // Guarantee progress even on pathological input.
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    fn parse_single_item(&mut self) -> Vec<Item> {
        match self.peek_text(0) {
            "struct" => vec![self.parse_struct(Vec::new())],
            "enum" => vec![self.parse_enum(Vec::new())],
            "impl" => vec![self.parse_impl(false)],
            "mod" => vec![self.parse_mod(false)],
            "trait" => vec![self.parse_trait(false)],
            _ => {
                self.skip_item_to_semi();
                Vec::new()
            }
        }
    }

    fn parse_let(&mut self) -> Expr {
        let line = self.line();
        self.pos += 1; // let
                       // Pattern tokens until `:`, `=` or `;` at depth 0.
        let mut depth = 0i64;
        let mut pat: Vec<&Tok> = Vec::new();
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" | "=" | ";" if depth <= 0 => break,
                "==" | "=>" if depth <= 0 => break,
                _ => {}
            }
            pat.push(t);
            self.pos += 1;
        }
        let bindings = pattern_bindings(&pat);
        let ty = if self.eat(":") {
            let mut depth = 0i64;
            let mut ty: Vec<&Tok> = Vec::new();
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    "=" | ";" if depth <= 0 => break,
                    _ => {}
                }
                ty.push(t);
                self.pos += 1;
            }
            Some(join_tokens(ty))
        } else {
            None
        };
        let init = if self.eat("=") {
            Some(Box::new(self.parse_expr(0, true)))
        } else {
            None
        };
        let else_block = if self.peek_text(0) == "else" && self.peek_text(1) == "{" {
            self.pos += 1;
            self.pos += 1;
            Some(Box::new(self.parse_block_body(self.line())))
        } else {
            None
        };
        self.eat(";");
        Expr::Let {
            bindings,
            ty,
            init,
            else_block,
            line,
        }
    }

    /// Pratt expression parser. `no_struct` suppresses struct-literal
    /// parsing (condition / scrutinee position).
    fn parse_expr(&mut self, min_bp: u8, allow_struct: bool) -> Expr {
        let mut lhs = self.parse_prefix(allow_struct);
        while let Some(op) = self.peek(0) {
            let op_text = op.text.clone();
            let line = op.line;
            // Postfix.
            match op_text.as_str() {
                "." => {
                    self.pos += 1;
                    let Some(next) = self.peek(0) else { break };
                    let name = next.text.clone();
                    self.pos += 1;
                    if name == "await" {
                        continue;
                    }
                    // Turbofish on methods: `.collect::<Vec<_>>()`.
                    if self.peek_text(0) == "::" {
                        self.pos += 1;
                        if self.peek_text(0) == "<" {
                            self.skip_balanced("<", ">");
                        }
                    }
                    if self.peek_text(0) == "(" {
                        let args = self.call_args();
                        lhs = Expr::MethodCall {
                            recv: Box::new(lhs),
                            name,
                            args,
                            line,
                        };
                    } else {
                        lhs = Expr::Field {
                            base: Box::new(lhs),
                            name,
                            line,
                        };
                    }
                    continue;
                }
                "(" => {
                    let args = self.call_args();
                    lhs = Expr::Call {
                        callee: Box::new(lhs),
                        args,
                        line,
                    };
                    continue;
                }
                "[" => {
                    let inner = self.delimited_tokens("[", "]");
                    let index = parse_fragment(&inner, line);
                    lhs = Expr::Index {
                        base: Box::new(lhs),
                        index: Box::new(index),
                        line,
                    };
                    continue;
                }
                "?" => {
                    self.pos += 1;
                    lhs = Expr::Group {
                        children: vec![lhs],
                        line,
                    };
                    continue;
                }
                "as" => {
                    self.pos += 1;
                    let mut depth = 0i64;
                    let mut ty: Vec<&Tok> = Vec::new();
                    while let Some(t) = self.peek(0) {
                        let is_type_tok = match t.text.as_str() {
                            "<" | "(" | "[" => {
                                depth += 1;
                                true
                            }
                            ">" | ")" | "]" if depth > 0 => {
                                depth -= 1;
                                true
                            }
                            _ if depth > 0 => true,
                            "::" | "*" | "&" | "dyn" | "mut" | "const" => ty
                                .last()
                                .is_none_or(|l| l.kind != TokKind::Ident || t.text == "::"),
                            _ => t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()),
                        };
                        if !is_type_tok {
                            break;
                        }
                        ty.push(t);
                        self.pos += 1;
                    }
                    lhs = Expr::Cast {
                        expr: Box::new(lhs),
                        ty: join_tokens(ty),
                        line,
                    };
                    continue;
                }
                _ => {}
            }
            // Range operators.
            if op_text == ".." || op_text == "..=" {
                let (l_bp, r_bp) = (2u8, 3u8);
                if l_bp < min_bp {
                    break;
                }
                self.pos += 1;
                let hi = if self.starts_expr(allow_struct) {
                    Some(Box::new(self.parse_expr(r_bp, allow_struct)))
                } else {
                    None
                };
                lhs = Expr::Range {
                    lo: Some(Box::new(lhs)),
                    hi,
                    line,
                };
                continue;
            }
            // Binary / assignment operators.
            let Some((l_bp, r_bp, is_assign)) = binop_power(&op_text) else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_expr(r_bp, allow_struct);
            lhs = if is_assign {
                Expr::Assign {
                    op: op_text,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                }
            } else {
                Expr::Binary {
                    op: op_text,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                }
            };
        }
        lhs
    }

    /// Could the current token begin an expression? (Used to detect
    /// open-ended ranges.)
    fn starts_expr(&self, _allow_struct: bool) -> bool {
        match self.peek(0) {
            None => false,
            Some(t) => match t.kind {
                TokKind::Ident => !matches!(t.text.as_str(), "in" | "else" | "where"),
                TokKind::Number | TokKind::Str | TokKind::Char => true,
                TokKind::Lifetime => false,
                TokKind::Punct => matches!(
                    t.text.as_str(),
                    "(" | "[" | "{" | "&" | "*" | "-" | "!" | "|" | "||"
                ),
            },
        }
    }

    fn call_args(&mut self) -> Vec<Expr> {
        let line = self.line();
        let inner = self.delimited_tokens("(", ")");
        split_top_level(&inner, ",")
            .into_iter()
            .filter(|seg| !seg.is_empty())
            .map(|seg| parse_fragment(&seg, line))
            .collect()
    }

    fn parse_prefix(&mut self, allow_struct: bool) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::Opaque {
                idents: Vec::new(),
                line: self.line(),
            };
        };
        let line = t.line;
        match t.kind {
            TokKind::Number => {
                self.pos += 1;
                Expr::Lit {
                    is_int: int_literal(&t.text),
                    text: t.text.clone(),
                    line,
                }
            }
            TokKind::Str | TokKind::Char | TokKind::Lifetime => {
                self.pos += 1;
                Expr::Lit {
                    is_int: false,
                    text: t.text.clone(),
                    line,
                }
            }
            TokKind::Punct => match t.text.as_str() {
                "&" | "*" | "-" | "!" => {
                    self.pos += 1;
                    self.eat("mut");
                    let inner = self.parse_expr(11, allow_struct);
                    Expr::Group {
                        children: vec![inner],
                        line,
                    }
                }
                "(" => {
                    let inner = self.delimited_tokens("(", ")");
                    let children = split_top_level(&inner, ",")
                        .into_iter()
                        .filter(|seg| !seg.is_empty())
                        .map(|seg| parse_fragment(&seg, line))
                        .collect();
                    Expr::Group { children, line }
                }
                "[" => {
                    let inner = self.delimited_tokens("[", "]");
                    let mut children = Vec::new();
                    for seg in split_top_level(&inner, ",") {
                        for sub in split_top_level(&seg, ";") {
                            if !sub.is_empty() {
                                children.push(parse_fragment(&sub, line));
                            }
                        }
                    }
                    Expr::Group { children, line }
                }
                "{" => {
                    self.pos += 1;
                    self.parse_block_body(line)
                }
                "|" | "||" => self.parse_closure(line),
                ".." | "..=" => {
                    self.pos += 1;
                    let hi = if self.starts_expr(allow_struct) {
                        Some(Box::new(self.parse_expr(3, allow_struct)))
                    } else {
                        None
                    };
                    Expr::Range { lo: None, hi, line }
                }
                "#" => {
                    if self.eat_attribute().is_none() {
                        self.pos += 1;
                    }
                    self.parse_prefix(allow_struct)
                }
                _ => {
                    self.pos += 1;
                    Expr::Opaque {
                        idents: Vec::new(),
                        line,
                    }
                }
            },
            TokKind::Ident => match t.text.as_str() {
                "if" => self.parse_if(line),
                "match" => self.parse_match(line),
                "while" => self.parse_while(line),
                "loop" => {
                    self.pos += 1;
                    let body = if self.eat("{") {
                        self.parse_block_body(line)
                    } else {
                        Expr::Opaque {
                            idents: Vec::new(),
                            line,
                        }
                    };
                    Expr::Loop {
                        cond: None,
                        bindings: Vec::new(),
                        body: Box::new(body),
                        line,
                    }
                }
                "for" => self.parse_for(line),
                "unsafe" => {
                    self.pos += 1;
                    if self.eat("{") {
                        self.parse_block_body(line)
                    } else {
                        Expr::Opaque {
                            idents: Vec::new(),
                            line,
                        }
                    }
                }
                "move" => {
                    self.pos += 1;
                    if matches!(self.peek_text(0), "|" | "||") {
                        self.parse_closure(line)
                    } else {
                        self.parse_prefix(allow_struct)
                    }
                }
                "return" | "break" => {
                    self.pos += 1;
                    let children = if self.starts_expr(allow_struct)
                        && !matches!(self.peek_text(0), ";" | "}" | ",")
                    {
                        vec![self.parse_expr(0, allow_struct)]
                    } else {
                        Vec::new()
                    };
                    Expr::Group { children, line }
                }
                "continue" => {
                    self.pos += 1;
                    Expr::Group {
                        children: Vec::new(),
                        line,
                    }
                }
                "let" => {
                    // `let` in expression position (if let / while let
                    // conditions reach here when parenthesized oddly).
                    self.parse_let()
                }
                "true" | "false" => {
                    self.pos += 1;
                    Expr::Lit {
                        is_int: false,
                        text: t.text.clone(),
                        line,
                    }
                }
                _ => self.parse_path_based(allow_struct, line),
            },
        }
    }

    fn parse_closure(&mut self, line: u32) -> Expr {
        let mut bindings = Vec::new();
        if self.eat("||") {
            // no params
        } else if self.eat("|") {
            let mut pat: Vec<&Tok> = Vec::new();
            let mut depth = 0i64;
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "|" if depth <= 0 => break,
                    _ => {}
                }
                pat.push(t);
                self.pos += 1;
            }
            self.eat("|");
            bindings = pattern_bindings(&pat);
        }
        // Optional `-> Ty` before a block body.
        if self.eat("->") {
            while !self.at_end() && self.peek_text(0) != "{" {
                self.pos += 1;
            }
        }
        let body = self.parse_expr(0, true);
        Expr::Closure {
            bindings,
            body: Box::new(body),
            line,
        }
    }

    fn parse_if(&mut self, line: u32) -> Expr {
        self.pos += 1; // if
        let (cond, bindings) = self.parse_condition();
        let then_block = if self.eat("{") {
            self.parse_block_body(self.line())
        } else {
            Expr::Opaque {
                idents: Vec::new(),
                line,
            }
        };
        let else_block = if self.eat("else") {
            if self.peek_text(0) == "if" {
                Some(Box::new(self.parse_if(self.line())))
            } else if self.eat("{") {
                Some(Box::new(self.parse_block_body(self.line())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            bindings,
            then_block: Box::new(then_block),
            else_block,
            line,
        }
    }

    /// Parses an `if`/`while` condition, handling `let pat = expr`.
    fn parse_condition(&mut self) -> (Expr, Vec<String>) {
        if self.eat("let") {
            let mut depth = 0i64;
            let mut pat: Vec<&Tok> = Vec::new();
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    "=" if depth <= 0 => break,
                    _ => {}
                }
                pat.push(t);
                self.pos += 1;
            }
            let bindings = pattern_bindings(&pat);
            self.eat("=");
            let cond = self.parse_expr(0, false);
            (cond, bindings)
        } else {
            (self.parse_expr(0, false), Vec::new())
        }
    }

    fn parse_while(&mut self, line: u32) -> Expr {
        self.pos += 1; // while
        let (cond, bindings) = self.parse_condition();
        let body = if self.eat("{") {
            self.parse_block_body(self.line())
        } else {
            Expr::Opaque {
                idents: Vec::new(),
                line,
            }
        };
        Expr::Loop {
            cond: Some(Box::new(cond)),
            bindings,
            body: Box::new(body),
            line,
        }
    }

    fn parse_for(&mut self, line: u32) -> Expr {
        self.pos += 1; // for
        let mut depth = 0i64;
        let mut pat: Vec<&Tok> = Vec::new();
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "in" if depth <= 0 => break,
                _ => {}
            }
            pat.push(t);
            self.pos += 1;
        }
        let bindings = pattern_bindings(&pat);
        self.eat("in");
        let iter = self.parse_expr(0, false);
        let body = if self.eat("{") {
            self.parse_block_body(self.line())
        } else {
            Expr::Opaque {
                idents: Vec::new(),
                line,
            }
        };
        Expr::For {
            bindings,
            iter: Box::new(iter),
            body: Box::new(body),
            line,
        }
    }

    fn parse_match(&mut self, line: u32) -> Expr {
        self.pos += 1; // match
        let scrutinee = self.parse_expr(0, false);
        if !self.eat("{") {
            return Expr::Group {
                children: vec![scrutinee],
                line,
            };
        }
        let mut arms = Vec::new();
        loop {
            if self.at_end() || self.eat("}") {
                break;
            }
            while self.eat_attribute().is_some() {}
            if self.eat(",") {
                continue;
            }
            // Pattern tokens until `=>` at depth 0.
            let arm_line = self.line();
            let mut depth = 0i64;
            let mut pat: Vec<&Tok> = Vec::new();
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth <= 0 => break,
                    _ => {}
                }
                if depth < 0 {
                    break;
                }
                pat.push(t);
                self.pos += 1;
            }
            if !self.eat("=>") {
                // Malformed arm; resync.
                if self.peek_text(0) == "}" {
                    continue;
                }
                self.pos += 1;
                continue;
            }
            // Split an `if` guard off the pattern.
            let mut guard_split = None;
            let mut d = 0i64;
            for (i, t) in pat.iter().enumerate() {
                match t.text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "if" if d <= 0 => {
                        guard_split = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            let (pat_part, has_guard) = match guard_split {
                Some(i) => (pat.get(..i).map(<[&Tok]>::to_vec).unwrap_or_default(), true),
                None => (pat.clone(), false),
            };
            let pat_paths = pattern_paths(&pat_part);
            let bindings = pattern_bindings(&pat_part);
            let is_wildcard = !has_guard
                && pat_part.len() == 1
                && pat_part.first().is_some_and(|t| t.text == "_");
            let has_literal = pat_part
                .iter()
                .any(|t| matches!(t.kind, TokKind::Number | TokKind::Str | TokKind::Char));
            let body = self.parse_expr(0, true);
            self.eat(",");
            arms.push(Arm {
                pat_paths,
                bindings,
                is_wildcard,
                has_literal,
                has_guard,
                body,
                line: arm_line,
            });
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }

    /// Ident-led expressions: paths, calls, macro calls, struct literals.
    fn parse_path_based(&mut self, allow_struct: bool, line: u32) -> Expr {
        let mut segs: Vec<String> = Vec::new();
        while let Some(t) = self.peek(0) {
            if t.kind != TokKind::Ident {
                break;
            }
            segs.push(t.text.clone());
            self.pos += 1;
            if self.peek_text(0) == "::" {
                self.pos += 1;
                // Turbofish `::<…>`.
                if self.peek_text(0) == "<" {
                    self.skip_balanced("<", ">");
                    if self.peek_text(0) == "::" {
                        self.pos += 1;
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            self.pos += 1;
            return Expr::Opaque {
                idents: Vec::new(),
                line,
            };
        }
        // Macro call: `name!(…)` / `name![…]` / `name!{…}`.
        if self.peek_text(0) == "!" {
            let delim = self.peek_text(1).to_string();
            if matches!(delim.as_str(), "(" | "[" | "{") {
                self.pos += 1; // !
                let (open, close) = match delim.as_str() {
                    "(" => ("(", ")"),
                    "[" => ("[", "]"),
                    _ => ("{", "}"),
                };
                let inner = self.delimited_tokens(open, close);
                let name = segs.last().cloned().unwrap_or_default();
                let mut args = Vec::new();
                for seg in split_top_level(&inner, ",") {
                    for sub in split_top_level(&seg, ";") {
                        if !sub.is_empty() {
                            args.push(parse_fragment(&sub, line));
                        }
                    }
                }
                return Expr::MacroCall { name, args, line };
            }
        }
        // Struct literal: `Path { field: …, … }`.
        if allow_struct && self.peek_text(0) == "{" && struct_lit_ahead(self) {
            let inner = self.delimited_tokens("{", "}");
            let mut fields = Vec::new();
            for seg in split_top_level(&inner, ",") {
                let mut it = seg.iter();
                match (it.next(), it.next()) {
                    (Some(nm), Some(colon)) if colon.text == ":" => {
                        let rest: Vec<&Tok> = it.copied().collect();
                        fields.push((nm.text.clone(), parse_fragment(&rest, line)));
                    }
                    (Some(nm), None) if nm.kind == TokKind::Ident => {
                        // Shorthand `Foo { x }`.
                        fields.push((
                            nm.text.clone(),
                            Expr::Path {
                                segs: vec![nm.text.clone()],
                                line,
                            },
                        ));
                    }
                    (Some(dots), _) if dots.text == ".." => {
                        let rest: Vec<&Tok> = seg.iter().skip(1).copied().collect();
                        if !rest.is_empty() {
                            fields.push(("..".to_string(), parse_fragment(&rest, line)));
                        }
                    }
                    _ => {}
                }
            }
            return Expr::StructLit { segs, fields, line };
        }
        Expr::Path { segs, line }
    }
}

/// Lookahead: does `{` open a struct literal (vs a block)? Heuristic on
/// the first meaningful tokens: `ident:`, `ident,`, `ident}`, `..`, `}`.
fn struct_lit_ahead(p: &Parser<'_>) -> bool {
    let t1 = p.peek(1);
    let t2 = p.peek(2);
    match (t1, t2) {
        (Some(a), _) if a.text == "}" || a.text == ".." => true,
        (Some(a), Some(b)) if a.kind == TokKind::Ident => {
            matches!(b.text.as_str(), ":" | "," | "}")
                && !matches!(a.text.as_str(), "if" | "match" | "let" | "return" | "while")
        }
        _ => false,
    }
}

/// Parses a detached token fragment (macro argument, call argument,
/// index) as an expression; falls back to [`Expr::Opaque`] keeping the
/// identifiers if the fragment is not a single complete expression.
fn parse_fragment(toks: &[&Tok], line: u32) -> Expr {
    let owned: Vec<Tok> = toks.iter().map(|t| clone_tok(t)).collect();
    let mut p = Parser {
        toks: &owned,
        pos: 0,
    };
    let e = p.parse_expr(0, true);
    if p.at_end() {
        e
    } else {
        Expr::Opaque {
            idents: toks
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect(),
            line: toks.first().map_or(line, |t| t.line),
        }
    }
}

fn clone_tok(t: &Tok) -> Tok {
    Tok {
        kind: t.kind,
        text: t.text.clone(),
        line: t.line,
    }
}

/// Splits `toks` at top-level occurrences of `sep` (depth over all
/// bracket kinds, with `<`/`>` excluded — they are ambiguous in
/// expression fragments and commas never appear at generic depth in the
/// fragments we split).
fn split_top_level<'a>(toks: &[&'a Tok], sep: &str) -> Vec<Vec<&'a Tok>> {
    let mut out = Vec::new();
    let mut cur: Vec<&Tok> = Vec::new();
    let mut depth = 0i64;
    let mut angle = 0i64;
    for t in toks {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" if prev_is_pathish(&cur) => angle += 1,
            ">" if angle > 0 => angle -= 1,
            ">>" if angle > 1 => angle -= 2,
            _ => {}
        }
        if t.text == sep && depth <= 0 && angle <= 0 {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(t);
        }
    }
    out.push(cur);
    out
}

/// Was the previous token something a generic-argument list could follow
/// (`ident` or `::`)? Distinguishes `Vec<u8>` from `a < b`.
fn prev_is_pathish(cur: &[&Tok]) -> bool {
    cur.last()
        .is_some_and(|t| t.kind == TokKind::Ident || t.text == "::")
}

/// Extracts binding identifiers from pattern tokens: lowercase-initial
/// idents that are not keywords, not path segments (`a::b`), and not
/// struct-pattern field names followed by `:`.
fn pattern_bindings(pat: &[&Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in pat.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(first) = t.text.chars().next() else {
            continue;
        };
        if !(first.is_lowercase() || first == '_') || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let next = pat.get(i + 1).map(|n| n.text.as_str());
        let prev = i
            .checked_sub(1)
            .and_then(|p| pat.get(p))
            .map(|n| n.text.as_str());
        if next == Some("::") || prev == Some("::") {
            continue;
        }
        if next == Some(":") {
            continue; // `Struct { field: binding }` — the binding follows
        }
        if t.text == "_" {
            continue;
        }
        out.push(t.text.clone());
    }
    out
}

/// Extracts `A::B[::C]` path chains referenced by pattern tokens.
fn pattern_paths(pat: &[&Tok]) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut cur: Vec<String> = Vec::new();
    let mut i = 0usize;
    while let Some(t) = pat.get(i) {
        if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            cur.push(t.text.clone());
            if pat.get(i + 1).is_some_and(|n| n.text == "::") {
                i += 2;
                continue;
            }
            if cur.len() > 1 {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        } else {
            if cur.len() > 1 {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
        i += 1;
    }
    if cur.len() > 1 {
        out.push(cur);
    }
    out
}

/// Parses a parameter list's inner tokens into [`Param`]s.
fn parse_params(inner: &[&Tok]) -> Vec<Param> {
    let mut out = Vec::new();
    for seg in split_top_level(inner, ",") {
        if seg.is_empty() {
            continue;
        }
        // Receiver forms: self / &self / &mut self / mut self /
        // self: Type.
        if seg.iter().any(|t| t.text == "self") && seg.len() <= 4 {
            out.push(Param {
                name: "self".to_string(),
                ty: "Self".to_string(),
            });
            continue;
        }
        // `pattern : type` split at the first top-level `:`.
        let mut depth = 0i64;
        let mut colon = None;
        for (i, t) in seg.iter().enumerate() {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                ":" if depth <= 0 => {
                    colon = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(c) = colon else { continue };
        let pat = seg.get(..c).unwrap_or_default();
        let ty = seg.get(c + 1..).unwrap_or_default();
        let bindings = pattern_bindings(pat);
        let name = bindings.join("_");
        out.push(Param {
            name: if name.is_empty() {
                "_".to_string()
            } else {
                name
            },
            ty: join_tokens(ty.to_vec()),
        });
    }
    out
}

/// Extracts the head type name from an impl-header token run: the last
/// path segment before generics, skipping `&`/`mut`/`dyn` prefixes
/// (`fmt::Debug` → `Debug`, `&mut Vec<u8>` → `Vec`).
fn head_type_name(toks: &[&Tok]) -> Option<String> {
    let mut last = None;
    let mut i = 0;
    while let Some(&t) = toks.get(i) {
        if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            last = Some(t.text.clone());
            if toks.get(i + 1).is_some_and(|n| n.text == "::") {
                i += 2;
                continue;
            }
            break;
        }
        if t.kind == TokKind::Lifetime || matches!(t.text.as_str(), "&" | "mut" | "dyn" | "const") {
            i += 1;
            continue;
        }
        break;
    }
    last
}

/// Binding powers for infix operators: `(left, right, is_assignment)`.
/// Right-associativity for assignment falls out of `right < left`.
fn binop_power(op: &str) -> Option<(u8, u8, bool)> {
    Some(match op {
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=" => (4, 3, true),
        "||" => (5, 6, false),
        "&&" => (7, 8, false),
        "==" | "!=" | "<" | ">" | "<=" | ">=" => (9, 10, false),
        "|" => (11, 12, false),
        "^" => (13, 14, false),
        "&" => (15, 16, false),
        "<<" | ">>" => (17, 18, false),
        "+" | "-" => (19, 20, false),
        "*" | "/" | "%" => (21, 22, false),
        _ => return None,
    })
}

/// Joins tokens into a compact type string (`& mut HmacDrbg` →
/// `&mut HmacDrbg`).
fn join_tokens(toks: Vec<&Tok>) -> String {
    let mut out = String::new();
    for t in toks {
        if !out.is_empty()
            && t.kind == TokKind::Ident
            && out
                .chars()
                .last()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

/// Is this numeric literal an integer (`42`, `0xff`, `1_000u64`) rather
/// than a float (`1.5`, `2e3`)?
fn int_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return true;
    }
    !text.contains('.') && !text.contains('e') && !text.contains('E')
}

/// The integer type names [`int_typed`] recognizes.
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Does a type string name a primitive integer (possibly behind `&`)?
pub fn int_typed(ty: &str) -> bool {
    let t = ty.trim_start_matches('&').trim_start_matches("mut ").trim();
    INT_TYPES.contains(&t)
}

/// Does this literal token carry an explicit integer suffix (`1u64`)?
pub fn int_suffixed(text: &str) -> bool {
    INT_TYPES.iter().any(|s| text.ends_with(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).0)
    }

    fn first_fn(ast: &Ast) -> &FnDecl {
        for item in &ast.items {
            if let Item::Fn(f) = item {
                return f;
            }
        }
        panic!("no fn parsed");
    }

    #[test]
    fn fn_signature_is_captured() {
        let ast = parse_src("pub fn f(a: u32, b: &mut HmacDrbg) -> Result<u64, E> { a }");
        let f = first_fn(&ast);
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty, "u32");
        assert_eq!(f.params[1].ty, "&mut HmacDrbg");
        assert!(f.ret.as_deref().unwrap().contains("Result"));
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_methods_and_self_receiver() {
        let ast = parse_src(
            "impl Writer { pub fn put(&mut self, v: u8) { self.buf.push(v); } }\n\
             impl Display for Writer { fn fmt(&self) {} }",
        );
        let mut seen = Vec::new();
        for item in &ast.items {
            if let Item::Impl {
                type_name,
                trait_name,
                fns,
                ..
            } = item
            {
                seen.push((type_name.clone(), trait_name.clone(), fns.len()));
            }
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], ("Writer".to_string(), None, 1));
        assert_eq!(
            seen[1],
            ("Writer".to_string(), Some("Display".to_string()), 1)
        );
    }

    #[test]
    fn calls_methods_and_macros_are_distinguished() {
        let ast = parse_src(
            "fn f(x: Option<u8>) { let y = x.unwrap(); helper(y); println!(\"{}\", y); }",
        );
        let f = first_fn(&ast);
        let mut methods = Vec::new();
        let mut calls = Vec::new();
        let mut macros = Vec::new();
        if let Some(b) = &f.body {
            b.walk(&mut |e| match e {
                Expr::MethodCall { name, .. } => methods.push(name.clone()),
                Expr::Call { callee, .. } => {
                    if let Expr::Path { segs, .. } = callee.as_ref() {
                        calls.push(segs.join("::"));
                    }
                }
                Expr::MacroCall { name, .. } => macros.push(name.clone()),
                _ => {}
            });
        }
        assert_eq!(methods, ["unwrap"]);
        assert_eq!(calls, ["helper"]);
        assert_eq!(macros, ["println"]);
    }

    #[test]
    fn match_arms_capture_paths_and_wildcards() {
        let ast = parse_src(
            "fn f(e: RpcError) -> bool { match e { RpcError::Timeout { .. } => true, \
             RpcError::Server(s) => s.ok(), _ => false } }",
        );
        let f = first_fn(&ast);
        let mut found = false;
        if let Some(b) = &f.body {
            b.walk(&mut |e| {
                if let Expr::Match { arms, .. } = e {
                    found = true;
                    assert_eq!(arms.len(), 3);
                    assert_eq!(arms[0].pat_paths, vec![vec!["RpcError", "Timeout"]]);
                    assert!(arms[2].is_wildcard);
                    assert!(!arms[1].is_wildcard);
                }
            });
        }
        assert!(found, "match not parsed");
    }

    #[test]
    fn guarded_wildcard_is_not_a_bare_catchall() {
        let ast = parse_src("fn f(x: u8) -> u8 { match x { 0 => 1, _ if x > 3 => 2, _ => 3 } }");
        let f = first_fn(&ast);
        if let Some(b) = &f.body {
            b.walk(&mut |e| {
                if let Expr::Match { arms, .. } = e {
                    assert!(!arms[1].is_wildcard && arms[1].has_guard);
                    assert!(arms[2].is_wildcard);
                }
            });
        }
    }

    #[test]
    fn let_bindings_types_and_inits() {
        let ast = parse_src(
            "fn f() { let mut t: u32 = 1; let (a, b) = pair(); let Some(x) = opt else { return; }; }",
        );
        let f = first_fn(&ast);
        let mut lets = Vec::new();
        if let Some(bd) = &f.body {
            bd.walk(&mut |e| {
                if let Expr::Let { bindings, ty, .. } = e {
                    lets.push((bindings.clone(), ty.clone()));
                }
            });
        }
        assert_eq!(lets.len(), 3);
        assert_eq!(lets[0], (vec!["t".to_string()], Some("u32".to_string())));
        assert_eq!(lets[1].0, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(lets[2].0, vec!["x".to_string()]);
    }

    #[test]
    fn binary_and_index_and_range() {
        let ast =
            parse_src("fn f(t: u32, xs: &[u8]) -> u8 { let a = t - 1; xs[(a + 2) as usize] }");
        let f = first_fn(&ast);
        let mut saw_sub = false;
        let mut saw_index = false;
        if let Some(b) = &f.body {
            b.walk(&mut |e| match e {
                Expr::Binary { op, .. } if op == "-" => saw_sub = true,
                Expr::Index { .. } => saw_index = true,
                _ => {}
            });
        }
        assert!(saw_sub && saw_index);
    }

    #[test]
    fn struct_literal_vs_block() {
        let ast = parse_src("fn f() -> S { if cond { g(); } S { a: 1, b } }");
        let f = first_fn(&ast);
        let mut lits = 0;
        if let Some(b) = &f.body {
            b.walk(&mut |e| {
                if let Expr::StructLit { segs, fields, .. } = e {
                    lits += 1;
                    assert_eq!(segs, &vec!["S".to_string()]);
                    assert_eq!(fields.len(), 2);
                }
            });
        }
        assert_eq!(lits, 1);
    }

    #[test]
    fn struct_fields_are_typed() {
        let ast =
            parse_src("struct Policy { pub jitter_ms: u64, name: String }\nstruct T(u32, f64);");
        let mut seen = Vec::new();
        for item in &ast.items {
            if let Item::Struct { name, fields, .. } = item {
                seen.push((name.clone(), fields.clone()));
            }
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1[0], ("jitter_ms".to_string(), "u64".to_string()));
        assert_eq!(seen[1].1[0], ("0".to_string(), "u32".to_string()));
    }

    #[test]
    fn test_gating_is_tracked() {
        let ast =
            parse_src("#[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} }\nfn prod() {}");
        let mut test_fns = 0;
        let mut prod_fns = 0;
        fn count(items: &[Item], under_test: bool, test_fns: &mut u32, prod_fns: &mut u32) {
            for item in items {
                match item {
                    Item::Fn(f) => {
                        if under_test || f.is_test {
                            *test_fns += 1;
                        } else {
                            *prod_fns += 1;
                        }
                    }
                    Item::Mod { items, is_test, .. } => {
                        count(items, under_test || *is_test, test_fns, prod_fns);
                    }
                    _ => {}
                }
            }
        }
        count(&ast.items, false, &mut test_fns, &mut prod_fns);
        assert_eq!(test_fns, 2);
        assert_eq!(prod_fns, 1);
    }

    #[test]
    fn closures_and_turbofish_do_not_derail() {
        let ast = parse_src(
            "fn f(v: Vec<u32>) -> Vec<u32> { v.iter().map(|x| x + 1).collect::<Vec<_>>() }",
        );
        let f = first_fn(&ast);
        let mut methods = Vec::new();
        if let Some(b) = &f.body {
            b.walk(&mut |e| {
                if let Expr::MethodCall { name, .. } = e {
                    methods.push(name.clone());
                }
            });
        }
        assert!(methods.contains(&"collect".to_string()));
        assert!(methods.contains(&"map".to_string()));
    }

    #[test]
    fn parser_is_total_on_garbage() {
        // Arbitrary token soup must neither panic nor loop forever.
        let srcs = [
            "fn f( { ) } ]",
            "impl for {}",
            "match { => , }",
            "fn g() { let = ; if { } else }",
            "}}}}((((",
        ];
        for s in srcs {
            let _ = parse_src(s);
        }
    }

    #[test]
    fn int_literal_classification() {
        assert!(int_literal("42") && int_literal("0xff") && int_literal("1_000u64"));
        assert!(!int_literal("1.5") && !int_literal("2e3"));
        assert!(int_suffixed("1u64") && !int_suffixed("1.0f64"));
        assert!(int_typed("u32") && int_typed("&mut usize") && !int_typed("f64"));
    }
}
