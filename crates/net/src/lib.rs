//! Dependency-free TCP RPC runtime for the SecCloud workspace.
//!
//! Everything below the resilience layer used to be a vector in memory:
//! `WireTransport` calls went straight into a `WireServer` and the only
//! "faults" were the testkit's byte-mangling wrappers. This crate moves
//! the same protocol onto `std::net` — SecCloud's setting is auditing
//! *remote* untrusted servers, and the failure modes that matter (partial
//! reads, mid-frame disconnects, stalled peers, length bombs arriving over
//! a real socket) only exist at a kernel socket boundary.
//!
//! The crate is four layers, bottom up:
//!
//! * [`frame`] — length-framed delivery (`"SCN1"` magic + u32 length +
//!   payload) with the socket-condition → `WireError` mapping: deadline →
//!   `Timeout`, boundary drop → `ConnectionLost`, mid-frame EOF →
//!   `TruncatedFrame`, declared length over the cap → `FrameTooLarge`
//!   (rejected pre-allocation, classified non-transient);
//! * [`proto`] — [`NetRequest`]/[`NetResponse`] envelopes, one per
//!   `WireTransport` method, with *typed* errors on the wire so
//!   `RpcError::is_transient` classifies exactly what the server decided;
//! * [`server`] — [`NetServer`], serving any `WireTransport` behind an
//!   accept loop with per-connection deadlines, bounded admission,
//!   `SECCLOUD_THREADS`-sized workers, request caps and graceful shutdown;
//! * [`client`] — [`NetTransport`], a reconnect-on-drop `WireTransport`
//!   over `TcpStream`, drop-in under `ResilientTransport`, circuit
//!   breakers and `ResilientPool` with no changes above.
//!
//! [`chaos`] adds the adversarial weather: a seeded TCP proxy
//! ([`ChaosProxy`]) that bit-flips, fragments, cuts, stalls and churns
//! live frames, deterministic per seed like the testkit's `FaultyChannel`.
//!
//! # Examples
//!
//! ```
//! use seccloud_cloudsim::{behavior::Behavior, rpc::WireServer, CloudServer};
//! use seccloud_cloudsim::rpc::WireTransport;
//! use seccloud_core::Sio;
//! use seccloud_net::{NetClientConfig, NetServer, NetServerConfig, NetTransport};
//!
//! let sio = Sio::new(b"net-doc");
//! let user = sio.register("alice");
//! let server = CloudServer::new(&sio, "cs", Behavior::Honest, b"srv");
//! let verifier = server.public().clone();
//! let signer = server.signer_public().clone();
//!
//! let net = NetServer::spawn(WireServer::new(server), NetServerConfig::default()).unwrap();
//! // lint: allow(transport, reason=doc example dials the server it just spawned)
//! let mut client = NetTransport::new(net.addr(), verifier, signer, NetClientConfig::default());
//! // No block at position 0 yet: the server answers an authoritative None.
//! assert_eq!(client.rpc_retrieve(user.identity(), 0), None);
//! net.shutdown();
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use chaos::{ChaosAction, ChaosConfig, ChaosEngine, ChaosEvent, ChaosProxy};
pub use client::{NetClientConfig, NetTransport};
pub use frame::{FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_LEN};
pub use proto::{NetRequest, NetResponse};
pub use server::{NetServer, NetServerConfig, NetServerStats};
