//! The `locks` and `blocking` rules: held-lock-set dataflow, the global
//! lock-order graph, and the blocking-under-lock policy.
//!
//! Three passes share one scoped guard-lifetime evaluator:
//!
//! 1. **Interning** walks every non-test body and assigns each distinct
//!    lock *identity* a bit in a `u64` mask. A field-held lock is named
//!    by its owner (`PreparedCache.inner`, `ProxyShared.plan`); a lock
//!    reached through a param or local is named by its declared type with
//!    `&`/`Arc<>` wrappers peeled (`Mutex<Receiver<TcpStream>>`); a
//!    `OnceLock` static is named `OnceLock.NAME`. Two same-typed locks
//!    collapse onto one bit — a deliberate conservative heuristic: the
//!    analysis may then report an order between two distinct instances,
//!    but it can never *miss* an order between aliases of one instance.
//! 2. **Summaries** ([`LockSummary`]) iterate over the PR-5 call graph
//!    with [`Workspace::fixpoint_summaries`]: which bits a fn (or any
//!    callee) acquires, which bits its return value still holds (only
//!    fns whose declared return type names a `Guard` can export one —
//!    `PreparedCache::lock`), and which blocking kinds (§[`crate::blocking`])
//!    it can reach.
//! 3. **Reporting** re-runs the evaluator with the fixpoint summaries:
//!    re-acquiring a held bit (directly or through a callee) is a
//!    self-deadlock finding; a blocking operation while a `Mutex`/`RwLock`
//!    bit is held is a `blocking` finding unless a reason-bearing
//!    `// lint: lock(...)` covers the line; every acquisition under held
//!    bits contributes `held → acquired` edges to the global lock-order
//!    graph, whose cycles are reported as potential deadlocks with one
//!    witness per edge.
//!
//! Guard lifetime follows Rust's drop rules closely enough to matter:
//! bindings anchor their bits until `drop()` or scope exit, un-bound
//! temporaries die at end of statement (so the guard-extending temporary
//! `m.lock().unwrap().push(x);` holds only for that statement), `match`
//! arms bind the scrutinee's bits (the poison-recovery
//! `match m.lock() { Ok(g) => g, Err(p) => p.into_inner() }` keeps the
//! bit), and `if let` temporaries release at the end of the `if`.
//! `OnceLock` bits participate in the order graph (a `get_or_init`
//! cycle is a real deadlock) but are exempt from the blocking policy —
//! one-time heavy initialization under a `OnceLock` is its whole point.

use std::collections::{BTreeMap, HashMap};

use crate::ast::{Expr, FnDecl};
use crate::blocking::{
    classify_unresolved_call, classify_unresolved_method, is_pairing_entry, kind_names, NetSummary,
    B_SOCKET,
};
use crate::callgraph::{Typer, Workspace};
use crate::rules::{FileCtx, Finding, Report, RULE_BLOCKING, RULE_LOCKS};

/// Methods whose return value still carries (or restores) the receiver's
/// guard: `m.lock().unwrap()` and the poison-recovery surface. Every
/// other method projects *out* of the guard (`.len()`, `.clone()`,
/// `.map(...)`) and returns no bits.
const GUARD_CARRIERS: [&str; 12] = [
    "unwrap",
    "expect",
    "ok",
    "err",
    "into_inner",
    "map_err",
    "as_ref",
    "as_mut",
    "as_deref",
    "borrow",
    "borrow_mut",
    "unwrap_or_else",
];

/// Receiver-type heads whose methods are std-library methods, never
/// workspace fns. The call graph's by-name union fallback would otherwise
/// manufacture phantom edges across them — `self.map.remove(&k)` on a
/// `HashMap` resolving to `PreparedCache::remove`, which locks — and the
/// evaluator would report the phantom as a re-entrant deadlock. Generic
/// params (`T`) and guard types stay union-eligible: guard deref
/// (`inner.touch(..)` through `MutexGuard<'_, Inner>`) and trait dispatch
/// (`t.rpc_audit(..)`) are real workspace edges.
const STD_CONTAINER_HEADS: [&str; 14] = [
    "HashMap", "BTreeMap", "HashSet", "BTreeSet", "Vec", "VecDeque", "String", "Option", "Result",
    "Arc", "Box", "Rc", "Instant", "Duration",
];

/// How a lock bit blocks waiters.
#[derive(Clone, Copy, PartialEq)]
enum LockKind {
    /// `Mutex` / `RwLock`: holding one subjects the holder to the
    /// blocking policy.
    Mutexy,
    /// `OnceLock`: order-graph participant only.
    Once,
}

/// The interned lock table: identity string → bit.
struct LockTable {
    names: Vec<String>,
    kinds: Vec<LockKind>,
    by_name: HashMap<String, u32>,
    /// Mask of bits whose kind is [`LockKind::Mutexy`].
    mutexy: u64,
}

impl LockTable {
    fn bit(&self, name: &str) -> Option<u64> {
        self.by_name.get(name).map(|&i| 1u64 << i.min(63))
    }

    fn names_of(&self, mask: u64) -> String {
        let mut parts = Vec::new();
        for (i, n) in self.names.iter().enumerate() {
            if mask & (1u64 << i.min(63)) != 0 {
                parts.push(format!("`{n}`"));
            }
        }
        parts.join(", ")
    }
}

/// Per-fn lock summary (grows monotonically under the fixpoint).
#[derive(Clone, Copy, Default, PartialEq)]
struct LockSummary {
    /// Bits this fn (or any callee) can acquire.
    acquires: u64,
    /// Bits the return value still holds (guard-returning helpers).
    returns_guard: u64,
    /// Blocking kinds reachable from this fn (see [`crate::blocking`]).
    blocks: u8,
}

/// One lock-order edge's first witness.
struct EdgeWitness {
    file: String,
    line: u32,
    func: String,
    via: Option<String>,
}

/// Resolves an acquisition site to a lock identity, if `recv.name(...)`
/// is one. Returns `(identity, kind)`.
fn lock_site(
    ws: &Workspace,
    typer: &Typer<'_>,
    recv: &Expr,
    name: &str,
    argc: usize,
) -> Option<(String, LockKind)> {
    match name {
        "get_or_init" | "get_or_try_init" => {
            // `OnceLock` statics only: an UPPER_CASE terminal path segment.
            let seg = static_name(recv)?;
            Some((format!("OnceLock.{seg}"), LockKind::Once))
        }
        "lock" if argc == 0 => {
            let ty = declared_type(ws, typer, recv)?;
            ty.contains("Mutex<")
                .then(|| (lock_identity(ws, typer, recv, &ty), LockKind::Mutexy))
        }
        "read" | "write" if argc == 0 => {
            let ty = declared_type(ws, typer, recv)?;
            ty.contains("RwLock<")
                .then(|| (lock_identity(ws, typer, recv, &ty), LockKind::Mutexy))
        }
        _ => None,
    }
}

/// The UPPER_CASE name of a static path expression (`GLOBAL`,
/// `cache::SECRET`), peeling `Group` wrappers.
fn static_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Group { children, .. } => match children.as_slice() {
            [one] => static_name(one),
            _ => None,
        },
        Expr::Path { segs, .. } => {
            let last = segs.last()?;
            (!last.is_empty() && !last.chars().any(char::is_lowercase)).then(|| last.clone())
        }
        _ => None,
    }
}

/// The declared type of a lock receiver: a struct field's declared type,
/// or a param/annotated-local raw type.
fn declared_type(ws: &Workspace, typer: &Typer<'_>, recv: &Expr) -> Option<String> {
    match recv {
        Expr::Group { children, .. } => match children.as_slice() {
            [one] => declared_type(ws, typer, one),
            _ => None,
        },
        Expr::Field { base, name, .. } => {
            let owner = typer.infer(base)?;
            ws.struct_fields.get(&owner)?.get(name).cloned()
        }
        _ => typer.raw_type_of(recv),
    }
}

/// The interned identity for a `Mutex`/`RwLock` acquisition: field
/// receivers are `Owner.field`; params/locals are the normalized declared
/// type (`&Arc<Mutex<T>>` → `Mutex<T>`).
fn lock_identity(ws: &Workspace, typer: &Typer<'_>, recv: &Expr, declared: &str) -> String {
    if let Expr::Field { base, name, .. } = peel(recv) {
        if let Some(owner) = typer.infer(base) {
            if ws
                .struct_fields
                .get(&owner)
                .is_some_and(|f| f.contains_key(name))
            {
                return format!("{owner}.{name}");
            }
        }
    }
    normalize_lock_type(declared)
}

fn peel(e: &Expr) -> &Expr {
    match e {
        Expr::Group { children, .. } => match children.as_slice() {
            [one] => peel(one),
            _ => e,
        },
        _ => e,
    }
}

/// The guarded type head inside a declared guard return type:
/// `MutexGuard<'_, Inner>` → `Inner`.
fn guard_target(ret: &str) -> Option<String> {
    let ret = ret.trim();
    let head_end = ret.find('<')?;
    if !ret.get(..head_end)?.ends_with("Guard") {
        return None;
    }
    let inner = ret.get(head_end + 1..)?.strip_suffix('>')?;
    Some(crate::callgraph::type_head(inner.rsplit(',').next()?))
}

/// The guarded type head of a direct std acquisition: a receiver declared
/// `Mutex<Receiver<TcpStream>>` yields `Receiver`.
fn lock_target_head(declared: &str) -> Option<String> {
    let t = normalize_lock_type(declared);
    let inner = t
        .strip_prefix("Mutex<")
        .or_else(|| t.strip_prefix("RwLock<"))?
        .strip_suffix('>')?;
    Some(crate::callgraph::type_head(inner))
}

/// Strips `&`, `mut ` and `Arc<…>` wrappers off a declared lock type.
fn normalize_lock_type(ty: &str) -> String {
    let mut t = ty.trim();
    loop {
        let peeled = t
            .trim_start_matches('&')
            .trim_start()
            .trim_start_matches("mut ")
            .trim_start();
        if peeled == t {
            break;
        }
        t = peeled;
    }
    while let Some(inner) = t.strip_prefix("Arc<").and_then(|r| r.strip_suffix('>')) {
        t = inner.trim();
    }
    t.to_string()
}

/// The evaluator: one fn body walk threading held bits, scoped bindings,
/// and (in the reporting pass) findings and order edges.
struct Eval<'a, 'b> {
    ws: &'a Workspace,
    typer: &'a Typer<'a>,
    table: &'a LockTable,
    summaries: &'a [LockSummary],
    net: &'a [NetSummary],
    owner: Option<&'a str>,
    fn_name: String,
    path: &'a str,
    /// Currently held bits.
    held: u64,
    /// Scoped binding stack: `(name, guard bits, guard-deref type head)`.
    /// The deref type makes method resolution *through* a guard exact:
    /// `inner.touch(..)` on a `MutexGuard<'_, Inner>` binding resolves
    /// against `Inner`, not the by-name union.
    bindings: Vec<(String, u64, Option<String>)>,
    /// Accumulated transitive acquisitions.
    acquires: u64,
    /// Accumulated reachable blocking kinds.
    blocks: u8,
    /// Reporting state (`None` during the fixpoint).
    sink: Option<Sink<'a, 'b>>,
}

struct Sink<'a, 'b> {
    ctx: &'a FileCtx,
    findings: &'b mut Vec<Finding>,
    edges: &'b mut BTreeMap<(u32, u32), EdgeWitness>,
}

impl Eval<'_, '_> {
    /// Union of all binding bits (anchored guards survive statement ends).
    fn anchored(&self) -> u64 {
        self.bindings.iter().fold(0, |m, (_, b, _)| m | b)
    }

    fn release_unanchored(&mut self, bits: u64) {
        self.held &= !(bits & !self.anchored());
    }

    fn held_mutexy(&self) -> u64 {
        self.held & self.table.mutexy
    }

    fn binding_bits(&self, name: &str) -> u64 {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _, _)| n == name)
            .map_or(0, |(_, b, _)| *b)
    }

    /// The receiver type a method should resolve against, seeing through
    /// guards: a binding's recorded deref type, a guard-returning helper's
    /// declared target (`PreparedCache::lock` → `Inner`), a direct std
    /// acquisition's guarded type, carrier methods, and fields thereof.
    /// Falls back to [`Typer::infer`].
    fn effective_ty(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Group { children, .. } => match children.as_slice() {
                [one] => self.effective_ty(one),
                _ => None,
            },
            Expr::Path { segs, .. } => match segs.as_slice() {
                [one] => self
                    .bindings
                    .iter()
                    .rev()
                    .find(|(n, _, d)| n == one && d.is_some())
                    .and_then(|(_, _, d)| d.clone())
                    .or_else(|| self.typer.infer(e)),
                _ => None,
            },
            Expr::Field { base, name, .. } => {
                let b = self.effective_ty(base)?;
                let fields = self.ws.struct_fields.get(&b)?;
                Some(crate::callgraph::type_head(fields.get(name)?))
            }
            Expr::MethodCall {
                recv, name, args, ..
            } => {
                if GUARD_CARRIERS.contains(&name.as_str()) {
                    return self.effective_ty(recv);
                }
                if matches!(name.as_str(), "lock" | "read" | "write") && args.is_empty() {
                    if let Some(ty) = declared_type(self.ws, self.typer, recv) {
                        if ty.contains("Mutex<") || ty.contains("RwLock<") {
                            return lock_target_head(&ty);
                        }
                    }
                }
                let rt = self.typer.infer(recv);
                let callees = self.ws.resolve_method(rt.as_deref(), name, args.len());
                if let [c] = callees.as_slice() {
                    if let Some(ret) = self.ws.fns.get(*c).and_then(|f| f.ret.as_deref()) {
                        if let Some(t) = guard_target(ret) {
                            return Some(t);
                        }
                    }
                }
                self.typer.infer(e)
            }
            _ => self.typer.infer(e),
        }
    }

    fn blocking_escaped(&self, line: u32) -> bool {
        self.sink.as_ref().is_none_or(|s| {
            s.ctx.lock_lines.contains(&line)
                || s.ctx.rule_allowed(RULE_BLOCKING, line)
                || s.ctx.test_lines.contains(&line)
        })
    }

    fn report_blocking(&mut self, line: u32, what: &str, kinds: u8) {
        let held = self.held_mutexy();
        if held == 0 || kinds == 0 || self.blocking_escaped(line) {
            return;
        }
        let locks = self.table.names_of(held);
        if let Some(s) = self.sink.as_mut() {
            s.findings.push(Finding {
                rule: RULE_BLOCKING,
                file: self.path.to_string(),
                line,
                message: format!(
                    "{what} ({}) while holding {locks} — move it outside the critical section \
                     or justify with `// lint: lock(<reason>)`",
                    kind_names(kinds),
                ),
            });
        }
    }

    fn report_lock(&mut self, line: u32, message: String) {
        let Some(s) = self.sink.as_mut() else { return };
        if s.ctx.rule_allowed(RULE_LOCKS, line) || s.ctx.test_lines.contains(&line) {
            return;
        }
        s.findings.push(Finding {
            rule: RULE_LOCKS,
            file: self.path.to_string(),
            line,
            message,
        });
    }

    /// Records `held → acquired` order edges and the re-entrancy check
    /// for `bits` being acquired at `line` (possibly via a callee).
    fn acquire_edges(&mut self, bits: u64, line: u32, via: Option<&str>) {
        if self.held & bits != 0 {
            let relocked = self.table.names_of(self.held & bits);
            let how = via.map_or(String::new(), |v| format!(" via `{v}`"));
            self.report_lock(
                line,
                format!(
                    "re-acquiring already-held {relocked}{how} — std locks are not reentrant; \
                     this deadlocks the thread against itself"
                ),
            );
        }
        let held = self.held & !bits;
        if held == 0 || bits == 0 {
            return;
        }
        let (path, func) = (self.path, self.fn_name.clone());
        let Some(s) = self.sink.as_mut() else { return };
        for h in 0..64u32 {
            if held & (1u64 << h) == 0 {
                continue;
            }
            for b in 0..64u32 {
                if bits & (1u64 << b) == 0 || h == b {
                    continue;
                }
                s.edges.entry((h, b)).or_insert_with(|| EdgeWitness {
                    file: path.to_string(),
                    line,
                    func: func.clone(),
                    via: via.map(str::to_string),
                });
            }
        }
    }

    /// Applies one resolved call's summaries: order edges, re-entrancy,
    /// blocking policy, and guard-bit return. Returns the value bits.
    fn apply_call(&mut self, callees: &[usize], args: &[Expr], method: bool, line: u32) -> u64 {
        let mut value = 0u64;
        let mut kinds = 0u8;
        let mut acq = 0u64;
        for &c in callees {
            let Some(s) = self.summaries.get(c) else {
                continue;
            };
            acq |= s.acquires;
            kinds |= s.blocks;
            value |= s.returns_guard;
        }
        // Deadline coupling: feeding a TcpStream into a callee that does
        // I/O on that param is socket-blocking at this call site.
        if self.call_feeds_stream_io(callees, args, method) {
            kinds |= B_SOCKET;
        }
        self.acquires |= acq;
        self.blocks |= kinds;
        if acq != 0 {
            let via = callees
                .first()
                .and_then(|&c| self.ws.fns.get(c))
                .map(|f| f.name.clone());
            self.acquire_edges(acq, line, via.as_deref());
        }
        if kinds != 0 {
            let via = callees
                .first()
                .and_then(|&c| self.ws.fns.get(c))
                .map_or_else(|| "call".to_string(), |f| format!("call to `{}`", f.name));
            self.report_blocking(line, &format!("{via} can block"), kinds);
        }
        self.held |= value;
        value
    }

    fn call_feeds_stream_io(&self, callees: &[usize], args: &[Expr], method: bool) -> bool {
        args.iter().enumerate().any(|(j, a)| {
            let Some(binding) = single_path(a) else {
                return false;
            };
            if !self
                .typer
                .raw_type_of(&Expr::Path {
                    segs: vec![binding.to_string()],
                    line: 0,
                })
                .is_some_and(|t| t.contains("TcpStream"))
            {
                return false;
            }
            callees.iter().any(|&c| {
                let Some(n) = self.net.get(c) else {
                    return false;
                };
                let has_self = self
                    .ws
                    .fns
                    .get(c)
                    .and_then(|f| f.params.first())
                    .is_some_and(|p| p.name == "self");
                let pidx = j + usize::from(method && has_self);
                let bit = 1u32 << u32::try_from(pidx).unwrap_or(31).min(31);
                (n.reads | n.writes) & bit != 0
            })
        })
    }

    fn eval_block(&mut self, stmts: &[Expr]) -> u64 {
        let scope = self.bindings.len();
        let mut last = 0u64;
        for (i, stmt) in stmts.iter().enumerate() {
            let v = self.eval(stmt);
            let tail = i + 1 == stmts.len();
            if tail {
                last = v;
            }
            // End of statement: un-anchored temporaries drop (the
            // guard-extending-temporary rule), except a tail expression's
            // value, which escapes to the enclosing scope.
            let keep = self.anchored() | if tail { v } else { 0 };
            self.held &= keep;
        }
        self.bindings.truncate(scope);
        self.held &= self.anchored() | last;
        last
    }

    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, e: &Expr) -> u64 {
        match e {
            Expr::Block { stmts, .. } => self.eval_block(stmts),
            Expr::Let {
                bindings,
                init,
                else_block,
                ..
            } => {
                let dty = match (init, bindings.len()) {
                    (Some(i), 1) => self.effective_ty(i),
                    _ => None,
                };
                let bits = init.as_ref().map_or(0, |i| self.eval(i));
                if let Some(eb) = else_block {
                    // The diverging arm observes the pre-binding state;
                    // whatever it does to `held` never reaches fall-through.
                    let snap = self.held;
                    self.eval(eb);
                    self.held = snap;
                }
                for b in bindings {
                    self.bindings.push((b.clone(), bits, dty.clone()));
                }
                0
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                // `ONCE.get_or_init(|| …)`: acquire, run the init under
                // the bit, release.
                if matches!(name.as_str(), "get_or_init" | "get_or_try_init") {
                    if let Some((id, _)) = lock_site(self.ws, self.typer, recv, name, args.len()) {
                        if let Some(bit) = self.table.bit(&id) {
                            self.acquire_edges(bit, *line, None);
                            self.acquires |= bit;
                            self.held |= bit;
                            for a in args {
                                self.eval(a);
                            }
                            self.held &= !bit;
                            return 0;
                        }
                    }
                }
                let rbits = self.eval(recv);
                if let Some((id, _)) = lock_site(self.ws, self.typer, recv, name, args.len()) {
                    if let Some(bit) = self.table.bit(&id) {
                        self.acquire_edges(bit, *line, None);
                        self.acquires |= bit;
                        self.held |= bit;
                        return bit;
                    }
                }
                for a in args {
                    self.eval(a);
                }
                let recv_ty = self.effective_ty(recv);
                let callees = if recv_ty
                    .as_deref()
                    .is_some_and(|t| STD_CONTAINER_HEADS.contains(&t))
                {
                    Vec::new()
                } else {
                    self.ws.resolve_method(recv_ty.as_deref(), name, args.len())
                };
                let carried = if GUARD_CARRIERS.contains(&name.as_str()) {
                    rbits
                } else {
                    0
                };
                if callees.is_empty() {
                    let raw = self.typer.raw_type_of(recv);
                    let kinds = classify_unresolved_method(name, raw.as_deref());
                    if kinds != 0 {
                        self.blocks |= kinds;
                        self.report_blocking(*line, &format!("`.{name}()` blocks"), kinds);
                    }
                    carried
                } else {
                    self.apply_call(&callees, args, true, *line) | carried
                }
            }
            Expr::Call { callee, args, line } => {
                let Expr::Path { segs, .. } = callee.as_ref() else {
                    self.eval(callee);
                    for a in args {
                        self.eval(a);
                    }
                    return 0;
                };
                let name = segs.last().map_or("", String::as_str);
                // `drop(g)` / `mem::drop(g)` releases the binding's bits.
                if name == "drop" && args.len() == 1 {
                    if let Some(b) = args.first().and_then(single_path) {
                        let bits = self.binding_bits(b);
                        let b = b.to_string();
                        if let Some(slot) = self.bindings.iter_mut().rev().find(|(n, _, _)| *n == b)
                        {
                            slot.1 = 0;
                        }
                        self.release_unanchored(bits);
                        return 0;
                    }
                    let bits = args.first().map_or(0, |a| self.eval(a));
                    self.release_unanchored(bits);
                    return 0;
                }
                let mut argbits = 0u64;
                for a in args {
                    argbits |= self.eval(a);
                }
                // `Some(g)` / `Ok(g)` wrappers keep carrying the guard.
                if matches!(name, "Some" | "Ok" | "Err") {
                    return argbits;
                }
                let callees = self.ws.resolve_call(segs, self.owner);
                if callees.is_empty() {
                    let kinds = classify_unresolved_call(segs);
                    if kinds != 0 {
                        self.blocks |= kinds;
                        self.report_blocking(*line, &format!("`{name}(..)` blocks"), kinds);
                    }
                    0
                } else {
                    self.apply_call(&callees, args, false, *line)
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let sty = self.effective_ty(scrutinee);
                let sbits = self.eval(scrutinee);
                let base = self.held;
                let mut union_held = 0u64;
                let mut value = 0u64;
                for arm in arms {
                    self.held = base;
                    let scope = self.bindings.len();
                    for b in &arm.bindings {
                        self.bindings.push((b.clone(), sbits, sty.clone()));
                    }
                    let v = self.eval(&arm.body);
                    self.bindings.truncate(scope);
                    self.held &= self.anchored() | v;
                    union_held |= self.held;
                    value |= v;
                }
                if arms.is_empty() {
                    self.release_unanchored(sbits);
                } else {
                    self.held = union_held;
                }
                value
            }
            Expr::If {
                cond,
                bindings,
                then_block,
                else_block,
                ..
            } => {
                let cty = if bindings.is_empty() {
                    None
                } else {
                    self.effective_ty(cond)
                };
                let cbits = self.eval(cond);
                let plain = bindings.is_empty();
                if plain {
                    // Plain-`if` condition temporaries drop before the
                    // then-block runs.
                    self.release_unanchored(cbits);
                }
                let base = self.held;
                let scope = self.bindings.len();
                for b in bindings {
                    self.bindings.push((b.clone(), cbits, cty.clone()));
                }
                let tv = self.eval(then_block);
                self.bindings.truncate(scope);
                self.held &= self.anchored() | tv;
                let h_then = self.held;
                self.held = base;
                if !plain {
                    // The no-match path never bound the scrutinee.
                    self.release_unanchored(cbits);
                }
                let ev = else_block.as_ref().map_or(0, |eb| self.eval(eb));
                self.held &= self.anchored() | ev;
                self.held |= h_then;
                tv | ev
            }
            Expr::Loop {
                cond,
                bindings,
                body,
                ..
            } => {
                let cty = match (cond, bindings.is_empty()) {
                    (Some(c), false) => self.effective_ty(c),
                    _ => None,
                };
                let cbits = cond.as_ref().map_or(0, |c| self.eval(c));
                if bindings.is_empty() {
                    self.release_unanchored(cbits);
                }
                let scope = self.bindings.len();
                for b in bindings {
                    self.bindings.push((b.clone(), cbits, cty.clone()));
                }
                self.eval(body);
                self.bindings.truncate(scope);
                self.held &= self.anchored();
                0
            }
            Expr::For {
                bindings,
                iter,
                body,
                ..
            } => {
                let ibits = self.eval(iter);
                self.release_unanchored(ibits);
                let scope = self.bindings.len();
                for b in bindings {
                    self.bindings.push((b.clone(), 0, None));
                }
                self.eval(body);
                self.bindings.truncate(scope);
                self.held &= self.anchored();
                0
            }
            Expr::Closure { bindings, body, .. } => {
                // Closures are evaluated inline at their construction
                // site: for `.map(|g| …)` / `get_or_init(|| …)` arguments
                // that is exactly when they run.
                let scope = self.bindings.len();
                for b in bindings {
                    self.bindings.push((b.clone(), 0, None));
                }
                let v = self.eval(body);
                self.bindings.truncate(scope);
                self.held &= self.anchored() | v;
                v
            }
            Expr::Assign { lhs, rhs, .. } => {
                let rb = self.eval(rhs);
                if let Some(nm) = single_path(lhs) {
                    let nm = nm.to_string();
                    let old = self.binding_bits(&nm);
                    if self
                        .bindings
                        .iter_mut()
                        .rev()
                        .find(|(n, _, _)| *n == nm)
                        .map(|slot| slot.1 = rb)
                        .is_some()
                    {
                        self.release_unanchored(old);
                    }
                } else {
                    self.eval(lhs);
                }
                0
            }
            Expr::Path { segs, .. } => match segs.as_slice() {
                [one] => self.binding_bits(one),
                _ => 0,
            },
            Expr::Group { children, .. } => {
                let mut v = 0;
                for c in children {
                    v |= self.eval(c);
                }
                v
            }
            Expr::Field { base, .. } => {
                self.eval(base);
                0
            }
            Expr::Index { base, index, .. } => {
                self.eval(base);
                self.eval(index);
                0
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.eval(lhs);
                self.eval(rhs);
                0
            }
            Expr::Cast { expr, .. } => self.eval(expr),
            Expr::MacroCall { args, .. } => {
                for x in args {
                    self.eval(x);
                }
                0
            }
            Expr::StructLit { fields, .. } => {
                for (_, x) in fields {
                    self.eval(x);
                }
                0
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(l) = lo {
                    self.eval(l);
                }
                if let Some(h) = hi {
                    self.eval(h);
                }
                0
            }
            Expr::Lit { .. } | Expr::Opaque { .. } | Expr::NestedFn(_) => 0,
        }
    }
}

/// A single-binding path (peeling `Group` wrappers).
fn single_path(e: &Expr) -> Option<&str> {
    match e {
        Expr::Group { children, .. } => match children.as_slice() {
            [one] => single_path(one),
            _ => None,
        },
        Expr::Path { segs, .. } => match segs.as_slice() {
            [one] => Some(one.as_str()),
            _ => None,
        },
        _ => None,
    }
}

fn qualified(f: &crate::callgraph::FnNode) -> String {
    match &f.owner {
        Some(o) => format!("{o}::{}", f.name),
        None => f.name.clone(),
    }
}

/// Interning pre-pass: walk every non-test body for acquisition sites.
fn build_table(ws: &Workspace, typers: &[Typer<'_>]) -> LockTable {
    let mut found: BTreeMap<String, LockKind> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some(typer) = typers.get(i) else { continue };
        let Some(body) = &f.body else { continue };
        body.walk(&mut |e| {
            if let Expr::MethodCall {
                recv, name, args, ..
            } = e
            {
                if let Some((id, kind)) = lock_site(ws, typer, recv, name, args.len()) {
                    found.entry(id).or_insert(kind);
                }
            }
        });
    }
    let mut table = LockTable {
        names: Vec::new(),
        kinds: Vec::new(),
        by_name: HashMap::new(),
        mutexy: 0,
    };
    for (name, kind) in found {
        if table.names.len() >= 63 {
            break;
        }
        let idx = u32::try_from(table.names.len()).unwrap_or(63);
        if kind == LockKind::Mutexy {
            table.mutexy |= 1u64 << idx;
        }
        table.by_name.insert(name.clone(), idx);
        table.names.push(name);
        table.kinds.push(kind);
    }
    table
}

fn analyze_fn(
    ws: &Workspace,
    typers: &[Typer<'_>],
    table: &LockTable,
    net: &[NetSummary],
    fn_idx: usize,
    summaries: &[LockSummary],
    sink: Option<Sink<'_, '_>>,
) -> LockSummary {
    let Some(f) = ws.fns.get(fn_idx) else {
        return LockSummary::default();
    };
    if f.is_test {
        return LockSummary::default();
    }
    let (Some(body), Some(typer)) = (&f.body, typers.get(fn_idx)) else {
        return LockSummary::default();
    };
    let mut ev = Eval {
        ws,
        typer,
        table,
        summaries,
        net,
        owner: f.owner.as_deref(),
        fn_name: qualified(f),
        path: ws.path_of(fn_idx),
        held: 0,
        bindings: Vec::new(),
        acquires: 0,
        blocks: if is_pairing_entry(&f.name) {
            crate::blocking::B_PAIRING
        } else {
            0
        },
        sink,
    };
    let tail = ev.eval(body);
    let returns_guard = if f.ret.as_deref().is_some_and(|r| r.contains("Guard")) {
        tail
    } else {
        0
    };
    LockSummary {
        acquires: ev.acquires,
        returns_guard,
        blocks: ev.blocks,
    }
}

/// Enumerates elementary cycles of the order graph (each reported from
/// its smallest bit, so every cycle appears exactly once) and renders a
/// finding per cycle with one witness per edge.
fn report_cycles(
    table: &LockTable,
    edges: &BTreeMap<(u32, u32), EdgeWitness>,
    ctxs: &HashMap<&str, &FileCtx>,
    report: &mut Report,
) {
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let nodes: Vec<u32> = adj.keys().copied().collect();
    let mut cycles: Vec<Vec<u32>> = Vec::new();
    for &start in &nodes {
        // DFS restricted to nodes ≥ start; a path closing back on
        // `start` is an elementary cycle canonically rooted at its
        // minimum bit.
        let mut stack: Vec<(u32, Vec<u32>)> = vec![(start, vec![start])];
        while let Some((cur, path)) = stack.pop() {
            if cycles.len() >= 16 {
                break;
            }
            for &next in adj.get(&cur).map_or(&[][..], Vec::as_slice) {
                if next == start && path.len() > 1 {
                    cycles.push(path.clone());
                } else if next > start && !path.contains(&next) && path.len() < 8 {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    cycles.sort();
    cycles.dedup();
    for cycle in cycles {
        let mut ring = String::new();
        let mut witnesses = Vec::new();
        for (i, &a) in cycle.iter().enumerate() {
            let b = cycle
                .get(i + 1)
                .copied()
                .unwrap_or_else(|| cycle.first().copied().unwrap_or(a));
            let na = table.names.get(a as usize).map_or("?", String::as_str);
            let nb = table.names.get(b as usize).map_or("?", String::as_str);
            if i == 0 {
                ring.push_str(&format!("`{na}`"));
            }
            ring.push_str(&format!(" → `{nb}`"));
            if let Some(w) = edges.get(&(a, b)) {
                let via = w
                    .via
                    .as_deref()
                    .map_or(String::new(), |v| format!(" via `{v}`"));
                witnesses.push(format!(
                    "`{na}` → `{nb}` in `{}`{via} ({}:{})",
                    w.func, w.file, w.line
                ));
            }
        }
        let Some(first) = cycle
            .first()
            .and_then(|&a| cycle.get(1).map(|&b| (a, b)))
            .and_then(|k| edges.get(&k))
        else {
            continue;
        };
        if ctxs.get(first.file.as_str()).is_some_and(|c| {
            c.rule_allowed(RULE_LOCKS, first.line) || c.test_lines.contains(&first.line)
        }) {
            continue;
        }
        report.findings.push(Finding {
            rule: RULE_LOCKS,
            file: first.file.clone(),
            line: first.line,
            message: format!(
                "potential deadlock: lock-order cycle {ring}; {}",
                witnesses.join("; ")
            ),
        });
    }
}

/// The `locks` + `blocking` rules: interning, summary fixpoint, then the
/// reporting pass feeding the global lock-order graph.
pub(crate) fn check_locks(
    ws: &Workspace,
    typers: &[Typer<'_>],
    ctxs: &HashMap<&str, &FileCtx>,
    net: &[NetSummary],
    report: &mut Report,
) {
    let table = build_table(ws, typers);
    if table.names.is_empty() {
        return;
    }
    let summaries = ws.fixpoint_summaries(LockSummary::default(), |i, sums| {
        analyze_fn(ws, typers, &table, net, i, sums, None)
    });
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(u32, u32), EdgeWitness> = BTreeMap::new();
    for i in 0..ws.fns.len() {
        // Held bits enter a body only through a direct acquisition or a
        // guard-returning callee, and both set `acquires` in the summary —
        // so a fn that can never acquire can never hold, and the reporting
        // walk cannot yield findings or edges for it. Skip the re-walk.
        if summaries.get(i).is_none_or(|s| s.acquires == 0) {
            continue;
        }
        let path = ws.path_of(i);
        let Some(ctx) = ctxs.get(path) else { continue };
        analyze_fn(
            ws,
            typers,
            &table,
            net,
            i,
            &summaries,
            Some(Sink {
                ctx,
                findings: &mut findings,
                edges: &mut edges,
            }),
        );
    }
    report.findings.append(&mut findings);
    report_cycles(&table, &edges, ctxs, report);
}

// Keep the unused-import lint honest: `FnDecl` is only named in docs.
const _: fn(&FnDecl) = |_| {};
