//! Protocol II — secure cloud storage (paper Section V-B).
//!
//! For each data block `mᵢ` the user produces an identity-based signature
//! `(Uᵢ, Vᵢ)`, then *replaces* `Vᵢ` with designated proofs
//! `Σᵢ = ê(Vᵢ, Q_CS)` / `Σ'ᵢ = ê(Vᵢ, Q_DA)` and uploads
//! `{mᵢ, Uᵢ, Σᵢ, Σ'ᵢ}`. Only the cloud server and the designated agency can
//! later authenticate the blocks (eq. 5); third parties — e.g. a data buyer
//! in the illegal-selling model — learn nothing.

use seccloud_hash::{HmacDrbg, Sha256};
use seccloud_ibs::{
    designate, sign, BatchVerifier, DesignatedSignature, UserPublic, VerifierKey, VerifierPublic,
};

use crate::sio::CloudUser;

/// One data block `mᵢ` with its position index.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DataBlock {
    index: u64,
    data: Vec<u8>,
}

impl DataBlock {
    /// Creates a block at `index` holding `data`.
    pub fn new(index: u64, data: Vec<u8>) -> Self {
        Self { index, data }
    }

    /// The block's position index (the paper's `pᵢ`).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The raw block bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The bytes that are actually signed: position-bound so a server
    /// cannot satisfy a challenge on position `p` with the block stored at
    /// a different position (the paper's storage-cheating case 2).
    pub fn signed_message(&self) -> Vec<u8> {
        let mut msg = Vec::with_capacity(8 + self.data.len());
        msg.extend_from_slice(&self.index.to_be_bytes());
        msg.extend_from_slice(&self.data);
        msg
    }

    /// A short content digest (used by simulators for bookkeeping).
    pub fn digest(&self) -> [u8; 32] {
        Sha256::digest(&self.signed_message())
    }

    /// Interprets the block as a sequence of big-endian `u64` readings —
    /// the numeric view the computation protocol operates on. Trailing
    /// bytes that do not fill a full word are ignored.
    pub fn values(&self) -> Vec<u64> {
        self.data
            .chunks_exact(8)
            .map(|c| {
                let mut word = [0u8; 8];
                word.copy_from_slice(c);
                u64::from_be_bytes(word)
            })
            .collect()
    }

    /// Builds a block from numeric readings.
    pub fn from_values(index: u64, values: &[u64]) -> Self {
        let mut data = Vec::with_capacity(values.len() * 8);
        for v in values {
            data.extend_from_slice(&v.to_be_bytes());
        }
        Self::new(index, data)
    }
}

/// A block together with the designated authentication data uploaded to the
/// cloud: `{mᵢ, Uᵢ, Σᵢ, Σ'ᵢ, …}` keyed by verifier identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedBlock {
    block: DataBlock,
    /// Designated signature per verifier identity (CS, DA, …).
    designations: Vec<(String, DesignatedSignature)>,
}

impl SignedBlock {
    /// The underlying block.
    pub fn block(&self) -> &DataBlock {
        &self.block
    }

    /// The designated signature for a given verifier identity, if present.
    pub fn designation_for(&self, verifier_identity: &str) -> Option<&DesignatedSignature> {
        self.designations
            .iter()
            .find(|(id, _)| id == verifier_identity)
            .map(|(_, sig)| sig)
    }

    /// Identities this block can be verified by.
    pub fn designated_verifiers(&self) -> impl Iterator<Item = &str> {
        self.designations.iter().map(|(id, _)| id.as_str())
    }

    /// All `(verifier identity, designated signature)` pairs — the wire
    /// representation of the upload.
    pub fn designations(&self) -> impl Iterator<Item = (&str, &DesignatedSignature)> {
        self.designations.iter().map(|(id, s)| (id.as_str(), s))
    }

    /// Rebuilds a signed block from serialized parts; authenticity is
    /// established by [`SignedBlock::verify`], not construction.
    pub fn from_parts(block: DataBlock, designations: Vec<(String, DesignatedSignature)>) -> Self {
        Self {
            block,
            designations,
        }
    }

    /// Verifies the block with a designated verifier's key (paper eq. 5):
    /// `Σᵢ = ê(Uᵢ + H2(Uᵢ‖mᵢ)·Q_ID, sk_V)`.
    pub fn verify(&self, verifier: &VerifierKey, owner: &UserPublic) -> bool {
        let Some(sig) = self.designation_for(verifier.identity()) else {
            return false;
        };
        sig.verify(verifier, owner, &self.block.signed_message())
    }

    /// Replaces the stored block content (test/simulation hook for the
    /// storage-cheating adversary).
    #[doc(hidden)]
    pub fn tamper_data(&mut self, data: Vec<u8>) {
        self.block.data = data;
    }

    /// Re-labels the block position (wrong-position cheating hook).
    #[doc(hidden)]
    pub fn tamper_index(&mut self, index: u64) {
        self.block.index = index;
    }
}

impl CloudUser {
    /// Signs a batch of blocks for upload, designating each signature to
    /// every verifier in `verifiers` (typically `[Q_CS, Q_DA]`).
    ///
    /// After this call the user can delete the local copies (paper: "sends
    /// the data and corresponding signature pairs {D, Φ} to the cloud
    /// server and deletes them from local storage").
    pub fn sign_blocks(
        &self,
        blocks: &[DataBlock],
        verifiers: &[&VerifierPublic],
    ) -> Vec<SignedBlock> {
        let mut drbg = HmacDrbg::new(&[self.identity().as_bytes(), b"/storage-signing"].concat());
        blocks
            .iter()
            .map(|b| {
                let raw = seccloud_ibs::sign_with_rng(self.key(), &b.signed_message(), &mut drbg);
                let designations = verifiers
                    .iter()
                    .map(|v| (v.identity().to_owned(), designate(&raw, v)))
                    .collect();
                SignedBlock {
                    block: b.clone(),
                    designations,
                }
            })
            .collect()
    }

    /// Parallel variant of [`CloudUser::sign_blocks`]: the per-block
    /// sign-then-designate work (one pairing per verifier per block) fans
    /// out over [`seccloud_parallel::num_threads`] workers.
    ///
    /// Each block draws its nonce from an independent DRBG seeded by
    /// `(identity, block position)`, so the output is deterministic for any
    /// worker count — but it is a *different* (equally valid) transcript
    /// than [`CloudUser::sign_blocks`], which threads one DRBG stream
    /// through the blocks sequentially.
    pub fn sign_blocks_parallel(
        &self,
        blocks: &[DataBlock],
        verifiers: &[&VerifierPublic],
    ) -> Vec<SignedBlock> {
        // Materialize each verifier's prepared pairing key before the
        // fan-out so workers share the caches.
        for v in verifiers {
            let _ = v.q_prepared();
        }
        seccloud_parallel::parallel_map(blocks, |i, b| {
            let mut drbg = HmacDrbg::new(
                &[
                    self.identity().as_bytes(),
                    b"/storage-signing-parallel/",
                    &(i as u64).to_be_bytes()[..],
                ]
                .concat(),
            );
            let raw = seccloud_ibs::sign_with_rng(self.key(), &b.signed_message(), &mut drbg);
            SignedBlock {
                block: b.clone(),
                designations: verifiers
                    .iter()
                    .map(|v| (v.identity().to_owned(), designate(&raw, v)))
                    .collect(),
            }
        })
    }

    /// Signs a single block with an explicit nonce (deterministic; used by
    /// tests and the simulator).
    pub fn sign_block(
        &self,
        block: &DataBlock,
        verifiers: &[&VerifierPublic],
        nonce: &[u8],
    ) -> SignedBlock {
        let raw = sign(self.key(), &block.signed_message(), nonce);
        SignedBlock {
            block: block.clone(),
            designations: verifiers
                .iter()
                .map(|v| (v.identity().to_owned(), designate(&raw, v)))
                .collect(),
        }
    }
}

/// Result of a storage audit over a sampled set of blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageAuditReport {
    /// Indices (into the sampled set) that failed verification.
    pub failed: Vec<usize>,
    /// Number of blocks checked.
    pub checked: usize,
}

impl StorageAuditReport {
    /// Whether every sampled block verified.
    pub fn is_valid(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Audits a set of retrieved blocks individually (one pairing each).
pub fn audit_blocks(
    verifier: &VerifierKey,
    owner: &UserPublic,
    blocks: &[SignedBlock],
) -> StorageAuditReport {
    let failed = blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| !b.verify(verifier, owner))
        .map(|(i, _)| i)
        .collect();
    StorageAuditReport {
        failed,
        checked: blocks.len(),
    }
}

/// Parallel variant of [`audit_blocks`]: the one-pairing-per-block checks
/// run on [`seccloud_parallel::num_threads`] workers. Reports the same
/// failure set as the serial audit for any worker count.
pub fn audit_blocks_parallel(
    verifier: &VerifierKey,
    owner: &UserPublic,
    blocks: &[SignedBlock],
) -> StorageAuditReport {
    let outcomes = seccloud_parallel::parallel_map(blocks, |_, b| b.verify(verifier, owner));
    StorageAuditReport {
        failed: outcomes
            .iter()
            .enumerate()
            .filter(|(_, ok)| !**ok)
            .map(|(i, _)| i)
            .collect(),
        checked: blocks.len(),
    }
}

/// Audits a set of retrieved blocks with one batch pairing (Section VI).
///
/// Returns `true` when the whole batch verifies; on failure fall back to
/// [`audit_blocks`] to locate the offenders.
pub fn audit_blocks_batched(
    verifier: &VerifierKey,
    owner: &UserPublic,
    blocks: &[SignedBlock],
) -> bool {
    let mut batch = BatchVerifier::new();
    for b in blocks {
        let Some(sig) = b.designation_for(verifier.identity()) else {
            return false;
        };
        batch.push(owner.clone(), b.block().signed_message(), sig.clone());
    }
    batch.verify(verifier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sio::Sio;

    fn setup() -> (
        Sio,
        CloudUser,
        crate::sio::VerifierCredential,
        crate::sio::VerifierCredential,
    ) {
        let sio = Sio::new(b"storage-tests");
        let user = sio.register("alice");
        let cs = sio.register_verifier("cs-01");
        let da = sio.register_verifier("da");
        (sio, user, cs, da)
    }

    fn blocks(n: u64) -> Vec<DataBlock> {
        (0..n)
            .map(|i| DataBlock::from_values(i, &[i * 10, i * 10 + 1, i * 10 + 2]))
            .collect()
    }

    #[test]
    fn signed_blocks_verify_for_both_designees() {
        let (_, user, cs, da) = setup();
        let signed = user.sign_blocks(&blocks(5), &[cs.public(), da.public()]);
        for b in &signed {
            assert!(b.verify(cs.key(), user.public()));
            assert!(b.verify(da.key(), user.public()));
            assert_eq!(b.designated_verifiers().count(), 2);
        }
    }

    #[test]
    fn non_designated_verifier_cannot_authenticate() {
        let (sio, user, cs, _) = setup();
        let signed = user.sign_blocks(&blocks(2), &[cs.public()]);
        let eve = sio.register_verifier("eve-corp");
        assert!(!signed[0].verify(eve.key(), user.public()));
        assert!(signed[0].designation_for("eve-corp").is_none());
    }

    #[test]
    fn tampered_data_is_detected() {
        let (_, user, cs, da) = setup();
        let mut signed = user.sign_blocks(&blocks(3), &[cs.public(), da.public()]);
        signed[1].tamper_data(b"modified by byzantine server".to_vec());
        assert!(!signed[1].verify(cs.key(), user.public()));
        let report = audit_blocks(cs.key(), user.public(), &signed);
        assert_eq!(report.failed, vec![1]);
        assert!(!report.is_valid());
        assert!(!audit_blocks_batched(da.key(), user.public(), &signed));
    }

    #[test]
    fn wrong_position_is_detected() {
        // The paper's storage-cheating case: serving data from position j
        // when position i was requested.
        let (_, user, cs, _) = setup();
        let mut signed = user.sign_blocks(&blocks(3), &[cs.public()]);
        signed[0].tamper_index(7);
        assert!(!signed[0].verify(cs.key(), user.public()));
    }

    #[test]
    fn batched_audit_agrees_with_individual() {
        let (_, user, cs, _) = setup();
        let signed = user.sign_blocks(&blocks(10), &[cs.public()]);
        assert!(audit_blocks(cs.key(), user.public(), &signed).is_valid());
        assert!(audit_blocks_batched(cs.key(), user.public(), &signed));
    }

    #[test]
    fn parallel_signing_verifies_and_is_deterministic() {
        let (_, user, cs, da) = setup();
        let bs = blocks(6);
        let signed = user.sign_blocks_parallel(&bs, &[cs.public(), da.public()]);
        assert_eq!(signed.len(), 6);
        for b in &signed {
            assert!(b.verify(cs.key(), user.public()));
            assert!(b.verify(da.key(), user.public()));
        }
        // Per-block seeding makes repeat runs bit-identical regardless of
        // worker count.
        assert_eq!(
            signed,
            user.sign_blocks_parallel(&bs, &[cs.public(), da.public()])
        );
    }

    #[test]
    fn parallel_audit_matches_serial_audit() {
        let (_, user, cs, _) = setup();
        let mut signed = user.sign_blocks(&blocks(9), &[cs.public()]);
        signed[2].tamper_data(b"bad".to_vec());
        signed[7].tamper_index(99);
        let serial = audit_blocks(cs.key(), user.public(), &signed);
        let parallel = audit_blocks_parallel(cs.key(), user.public(), &signed);
        assert_eq!(serial, parallel);
        assert_eq!(parallel.failed, vec![2, 7]);
    }

    #[test]
    fn wrong_owner_rejected() {
        let (sio, user, cs, _) = setup();
        let signed = user.sign_blocks(&blocks(2), &[cs.public()]);
        let bob = sio.register("bob");
        assert!(!signed[0].verify(cs.key(), bob.public()));
    }

    #[test]
    fn values_round_trip() {
        let b = DataBlock::from_values(3, &[1, u64::MAX, 42]);
        assert_eq!(b.values(), vec![1, u64::MAX, 42]);
        assert_eq!(b.index(), 3);
        // Non-multiple-of-8 data drops the tail.
        let odd = DataBlock::new(0, vec![0, 0, 0, 0, 0, 0, 0, 9, 1, 2]);
        assert_eq!(odd.values(), vec![9]);
    }

    #[test]
    fn signed_message_binds_position() {
        let b1 = DataBlock::new(1, vec![0xaa]);
        let b2 = DataBlock::new(2, vec![0xaa]);
        assert_ne!(b1.signed_message(), b2.signed_message());
        assert_ne!(b1.digest(), b2.digest());
    }

    #[test]
    fn empty_block_set_is_trivially_valid() {
        let (_, user, cs, _) = setup();
        let report = audit_blocks(cs.key(), user.public(), &[]);
        assert!(report.is_valid());
        assert!(audit_blocks_batched(cs.key(), user.public(), &[]));
    }
}
