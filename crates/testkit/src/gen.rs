//! Tape-driven generators for every wire-message type.
//!
//! Each generator consumes bytes from a [`Tape`] and builds a structurally
//! valid message — group elements are genuine curve points / canonical
//! field strings, so the values exercise the *semantic* layers, not just
//! the parser. Sizes are drawn small (a handful of items, short strings)
//! because protocol bugs live in structure, not bulk; the byte-level
//! shrinker then drives failing cases toward the empty message.

use seccloud_core::computation::{
    AuditChallenge, AuditItemResponse, AuditResponse, Commitment, CompactAuditItem,
    CompactAuditResponse, ComputationRequest, ComputeFunction, RequestItem,
};
use seccloud_core::storage::{DataBlock, SignedBlock};
use seccloud_core::warrant::Warrant;
use seccloud_ibs::DesignatedSignature;
use seccloud_merkle::{MerklePath, MultiProof, Node};
use seccloud_pairing::{hash_to_g1, Gt, G1};

use crate::tape::Tape;

/// A point of `G1` — a genuine curve point derived from one tape byte
/// (hash-to-curve over a 256-element pool keeps generation cheap while
/// still giving distinct, decodable points).
pub fn g1(t: &mut Tape) -> G1 {
    hash_to_g1(&[b'g', t.next_u8()])
}

/// A canonical `GT` byte string reinterpreted as an element: each of the
/// twelve `Fp` coefficients is a 64-bit value (always `< p`, hence
/// canonical), so [`Gt::from_bytes`] accepts it.
pub fn gt(t: &mut Tape) -> Gt {
    let mut bytes = [0u8; 384];
    for i in 0..12 {
        bytes[i * 32 + 24..i * 32 + 32].copy_from_slice(&t.next_u64().to_be_bytes());
    }
    Gt::from_bytes(&bytes).expect("small coefficients are canonical")
}

/// A structurally valid designated signature (not protocol-valid).
pub fn signature(t: &mut Tape) -> DesignatedSignature {
    DesignatedSignature::from_parts(g1(t), gt(t))
}

/// A 32-byte Merkle node.
pub fn node(t: &mut Tape) -> Node {
    t.next_bytes(32).try_into().expect("32 bytes")
}

/// A short ASCII identity string.
pub fn identity(t: &mut Tape) -> String {
    let len = t.next_below(8) as usize;
    (0..len)
        .map(|_| char::from(b'a' + (t.next_below(26) as u8)))
        .collect()
}

/// A data block with up to 32 payload bytes.
pub fn data_block(t: &mut Tape) -> DataBlock {
    let index = t.next_u64();
    let len = t.next_below(33) as usize;
    DataBlock::new(index, t.next_bytes(len))
}

/// A signed block carrying 0–2 designations.
pub fn signed_block(t: &mut Tape) -> SignedBlock {
    let block = data_block(t);
    let n = t.next_below(3) as usize;
    let designations = (0..n).map(|_| (identity(t), signature(t))).collect();
    SignedBlock::from_parts(block, designations)
}

/// Any of the eight compute functions, with short coefficient vectors.
pub fn compute_function(t: &mut Tape) -> ComputeFunction {
    match t.next_below(8) {
        0 => ComputeFunction::Sum,
        1 => ComputeFunction::Average,
        2 => ComputeFunction::Max,
        3 => ComputeFunction::Min,
        4 => ComputeFunction::Count,
        5 => {
            let n = t.next_below(4) as usize;
            ComputeFunction::WeightedSum((0..n).map(|_| t.next_u64()).collect())
        }
        6 => {
            let n = t.next_below(4) as usize;
            ComputeFunction::Polynomial((0..n).map(|_| t.next_u64()).collect())
        }
        _ => ComputeFunction::SumSquaredDeviation,
    }
}

/// A computation request of 0–4 items.
pub fn computation_request(t: &mut Tape) -> ComputationRequest {
    let n = t.next_below(5) as usize;
    let items = (0..n)
        .map(|_| {
            let function = compute_function(t);
            let np = t.next_below(4) as usize;
            RequestItem {
                function,
                positions: (0..np).map(|_| t.next_u64()).collect(),
            }
        })
        .collect();
    ComputationRequest::new(items)
}

/// A commitment with 0–4 results.
pub fn commitment(t: &mut Tape) -> Commitment {
    let n = t.next_below(5) as usize;
    Commitment {
        results: (0..n).map(|_| t.next_u128()).collect(),
        root: node(t),
        root_sig: signature(t),
        server_identity: identity(t),
    }
}

/// An audit challenge with 0–5 indices and a random nonce.
pub fn audit_challenge(t: &mut Tape) -> AuditChallenge {
    let n = t.next_below(6) as usize;
    AuditChallenge {
        indices: (0..n).map(|_| t.next_below(1 << 32) as usize).collect(),
        nonce: t.next_u128(),
    }
}

/// A Merkle path with 0–5 siblings.
pub fn merkle_path(t: &mut Tape) -> MerklePath {
    let n = t.next_below(6) as usize;
    let siblings = (0..n).map(|_| (node(t), t.next_bool())).collect();
    let leaf_count = t.next_below(64) as usize;
    MerklePath::from_parts(siblings, leaf_count)
}

/// A multi-proof with 0–5 nodes.
pub fn multi_proof(t: &mut Tape) -> MultiProof {
    let n = t.next_below(6) as usize;
    let nodes = (0..n).map(|_| node(t)).collect();
    let leaf_count = t.next_below(64) as usize;
    MultiProof::from_parts(nodes, leaf_count)
}

/// A full audit response with 0–2 items, each holding 0–1 input blocks.
pub fn audit_response(t: &mut Tape) -> AuditResponse {
    let n = t.next_below(3) as usize;
    let items = (0..n)
        .map(|_| {
            let item_index = t.next_below(1 << 32) as usize;
            let nb = t.next_below(2) as usize;
            AuditItemResponse {
                item_index,
                inputs: (0..nb).map(|_| signed_block(t)).collect(),
                claimed_y: t.next_u128(),
                path: merkle_path(t),
            }
        })
        .collect();
    AuditResponse {
        nonce: t.next_u128(),
        items,
    }
}

/// A compact audit response with 0–2 items plus a multi-proof.
pub fn compact_audit_response(t: &mut Tape) -> CompactAuditResponse {
    let n = t.next_below(3) as usize;
    let items = (0..n)
        .map(|_| {
            let item_index = t.next_below(1 << 32) as usize;
            let nb = t.next_below(2) as usize;
            CompactAuditItem {
                item_index,
                inputs: (0..nb).map(|_| signed_block(t)).collect(),
                claimed_y: t.next_u128(),
            }
        })
        .collect();
    CompactAuditResponse {
        nonce: t.next_u128(),
        items,
        proof: multi_proof(t),
    }
}

/// A warrant with 0–2 designations (structurally valid, unsigned content).
pub fn warrant(t: &mut Tape) -> Warrant {
    let delegator = identity(t);
    let delegatee = identity(t);
    let expires_at = t.next_u64();
    let digest: [u8; 32] = t.next_bytes(32).try_into().expect("32 bytes");
    let n = t.next_below(3) as usize;
    let designations = (0..n).map(|_| (identity(t), signature(t))).collect();
    Warrant::from_parts(delegator, delegatee, expires_at, digest, designations)
}

/// A raw byte string of length 0–511 (for decode-totality properties).
pub fn raw_bytes(t: &mut Tape) -> Vec<u8> {
    let len = t.next_below(512) as usize;
    t.next_bytes(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_hash::HmacDrbg;

    #[test]
    fn generators_are_tape_deterministic() {
        let mut d = HmacDrbg::new(b"gen-det");
        let bytes = d.next_bytes(1024);
        let a = audit_response(&mut Tape::new(bytes.clone()));
        let b = audit_response(&mut Tape::new(bytes));
        assert_eq!(a, b);
    }

    #[test]
    fn gt_round_trips_through_bytes() {
        let mut d = HmacDrbg::new(b"gen-gt");
        let mut t = Tape::from_drbg(&mut d, 256);
        let v = gt(&mut t);
        assert_eq!(Gt::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn exhausted_tape_still_generates() {
        // All-zero draws must produce valid (minimal) values, not panics.
        let mut t = Tape::new(Vec::new());
        let r = audit_response(&mut t);
        assert_eq!(r.items.len(), 0);
        let w = warrant(&mut Tape::new(Vec::new()));
        assert_eq!(w.delegator(), "");
    }
}
