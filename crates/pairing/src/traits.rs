//! The field-element abstraction shared by the tower and curve code.

use core::fmt::Debug;

/// Minimal arithmetic interface implemented by every field in the tower
/// (`Fp`, `Fr`, `Fp2`, `Fp6`, `Fp12`).
///
/// The generic curve and Miller-loop code is written against this trait so
/// the same Jacobian formulas serve `G1` (over `Fp`) and `G2` (over `Fp2`).
pub trait FieldElement: Copy + Clone + PartialEq + Eq + Debug + Send + Sync + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Whether this is the additive identity.
    fn is_zero(&self) -> bool;
    /// Field addition.
    fn add(&self, rhs: &Self) -> Self;
    /// Field subtraction.
    fn sub(&self, rhs: &Self) -> Self;
    /// Additive inverse.
    fn neg(&self) -> Self;
    /// Field multiplication.
    fn mul(&self, rhs: &Self) -> Self;
    /// Squaring (defaults to `self · self`).
    fn square(&self) -> Self {
        self.mul(self)
    }
    /// Doubling (defaults to `self + self`).
    fn double(&self) -> Self {
        self.add(self)
    }
    /// Multiplicative inverse; `None` for zero.
    fn inverse(&self) -> Option<Self>;

    /// Constant-time select: returns `a` when `choice == 0` and `b` when
    /// `choice == 1`, by masked limb arithmetic — no branch, no
    /// data-dependent memory access. `choice` **must** be 0 or 1.
    fn ct_select(a: &Self, b: &Self, choice: u64) -> Self;

    /// Constant-time zero test: returns `1` when `self` is the additive
    /// identity and `0` otherwise, as a mask-friendly bit rather than a
    /// branchable `bool`.
    fn ct_is_zero(&self) -> u64;

    /// Exponentiation by a little-endian limb slice (square-and-multiply).
    fn pow_limbs(&self, exp: &[u64]) -> Self {
        let mut acc = Self::one();
        let mut started = false;
        for i in (0..exp.len() * 64).rev() {
            if started {
                acc = acc.square();
            }
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                if started {
                    acc = acc.mul(self);
                } else {
                    acc = *self;
                    started = true;
                }
            }
        }
        if started {
            acc
        } else {
            Self::one()
        }
    }
}
