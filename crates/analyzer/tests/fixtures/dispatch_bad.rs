//! Bad fixture for the `dispatch` rule: a handler that hides unknown
//! wire-error variants behind a catch-all arm.
//! Never compiled — lexed by the analyzer self-tests only.

pub enum WireError {
    Truncated,
    BadMagic,
    BadLength,
}

pub fn describe(e: &WireError) -> &'static str {
    match e {
        WireError::Truncated => "truncated",
        _ => "other",
    }
}
