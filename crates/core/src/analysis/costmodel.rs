//! Audit-cost modelling: eq. 17, Theorem 3 (optimal sample size), and the
//! verification-cost comparisons behind Fig. 5 and Table II.

/// Coefficients of the paper's total-cost model (eq. 17):
/// `C_total = a₁·t·C_trans + a₂·C_comp + a₃·C_cheat·qᵗ`.
///
/// `q` is the probability of a successful (undetected) cheat per the
/// sampling analysis; the coefficients are learned "through a history
/// learning process" in the paper and are plain inputs here.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Weight of transmission cost.
    pub a1: f64,
    /// Per-sample transmission cost `C_trans`.
    pub c_trans: f64,
    /// Weight of computation cost.
    pub a2: f64,
    /// Per-audit computation cost `C_comp` (the paper models this term as
    /// independent of `t`).
    pub a2_c_comp: f64,
    /// Weight of cheating cost.
    pub a3: f64,
    /// Cost of an undetected cheat `C_cheat`.
    pub c_cheat: f64,
}

impl CostParams {
    /// Creates the model with unit weights.
    pub fn new(c_trans: f64, c_comp: f64, c_cheat: f64) -> Self {
        Self {
            a1: 1.0,
            c_trans,
            a2: 1.0,
            a2_c_comp: c_comp,
            a3: 1.0,
            c_cheat,
        }
    }

    /// `C_total(t)` for cheat-success probability `q` (eq. 17).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn total_cost(&self, t: u32, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "q must lie in (0, 1)");
        self.a1 * t as f64 * self.c_trans
            + self.a2 * self.a2_c_comp
            + self.a3 * self.c_cheat * q.powi(t as i32)
    }

    /// Theorem 3's closed-form optimum
    /// `t* = ⌈ln(−a₁·C_trans / (a₃·C_cheat·ln q)) / ln q⌉`, clamped to ≥ 0.
    ///
    /// Returns `None` when the optimum is unbounded or the parameters are
    /// degenerate (zero transmission cost, zero cheating cost, `q ∉ (0,1)`).
    pub fn optimal_sample_size(&self, q: f64) -> Option<u32> {
        if !(0.0..1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let num = self.a1 * self.c_trans;
        let den = self.a3 * self.c_cheat * (-q.ln());
        if num <= 0.0 || den <= 0.0 {
            return None;
        }
        // dC/dt = a1·Ctrans + a3·Ccheat·qᵗ·ln q = 0
        //   ⇒ qᵗ = a1·Ctrans / (a3·Ccheat·(−ln q))
        let ratio = num / den;
        if ratio >= 1.0 {
            // Sampling never pays for itself: marginal transmission cost
            // exceeds the maximum marginal cheat-risk reduction.
            return Some(0);
        }
        let t_star = ratio.ln() / q.ln();
        // t must be an integer; check the two neighbours of the real optimum.
        let floor = t_star.floor().max(0.0) as u32;
        let ceil = floor + 1;
        if self.total_cost(floor, q) <= self.total_cost(ceil, q) {
            Some(floor)
        } else {
            Some(ceil)
        }
    }
}

/// Measured primitive costs (milliseconds), the Table I quantities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemeCosts {
    /// `T_pmul`: one curve point multiplication.
    pub t_pmul_ms: f64,
    /// `T_pair`: one pairing evaluation.
    pub t_pair_ms: f64,
}

impl SchemeCosts {
    /// The paper's Table I reference numbers (MIRACL on a Core 2 Duo
    /// E6550): `T_pmul = 0.86 ms`, `T_pair = 4.14 ms`.
    pub fn paper_table_1() -> Self {
        Self {
            t_pmul_ms: 0.86,
            t_pair_ms: 4.14,
        }
    }
}

/// The verification-cost model behind Fig. 5: pairing counts as a function
/// of the number of cloud users `k` (one signature per user, as in the
/// paper's comparison).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VerificationCostModel {
    /// Measured primitive costs.
    pub costs: SchemeCosts,
}

impl VerificationCostModel {
    /// Creates the model from measured costs.
    pub fn new(costs: SchemeCosts) -> Self {
        Self { costs }
    }

    /// SecCloud batch verification cost for `k` users (Section VI): a
    /// *constant* 2 pairings plus `k` point multiplications and additions
    /// for the `U_A` aggregation (the paper counts the pairings; we include
    /// the linear point work honestly — it is the cheap term).
    pub fn ours_ms(&self, k: u32) -> f64 {
        2.0 * self.costs.t_pair_ms + k as f64 * self.costs.t_pmul_ms
    }

    /// Wang et al. [4]/[5]-style public auditing cost: pairings linear in
    /// the number of users (2 per user in the paper's comparison).
    pub fn wang_ms(&self, k: u32) -> f64 {
        2.0 * k as f64 * self.costs.t_pair_ms + k as f64 * self.costs.t_pmul_ms
    }

    /// BGLS aggregate verification: `k + 1` pairings.
    pub fn bgls_ms(&self, k: u32) -> f64 {
        (k as f64 + 1.0) * self.costs.t_pair_ms
    }

    /// Individual (non-batch) verification of `k` designated signatures:
    /// one pairing plus one point multiplication each.
    pub fn individual_ms(&self, k: u32) -> f64 {
        k as f64 * (self.costs.t_pair_ms + self.costs.t_pmul_ms)
    }

    /// The Fig. 5 series: `(k, ours, wang)` for `k = 1 ..= max_users`.
    pub fn fig5_series(&self, max_users: u32) -> Vec<(u32, f64, f64)> {
        (1..=max_users)
            .map(|k| (k, self.ours_ms(k), self.wang_ms(k)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_t_matches_brute_force() {
        let cases = [
            (CostParams::new(1.0, 5.0, 10_000.0), 0.5),
            (CostParams::new(0.1, 1.0, 1e6), 0.9),
            (CostParams::new(2.0, 0.0, 500.0), 0.25),
            (CostParams::new(5.0, 3.0, 1e9), 0.75),
        ];
        for (params, q) in cases {
            let t_star = params.optimal_sample_size(q).unwrap();
            let best_cost = params.total_cost(t_star, q);
            for t in 0..10_000 {
                assert!(
                    best_cost <= params.total_cost(t, q) + 1e-9,
                    "t*={t_star} beaten by t={t} (q={q})"
                );
            }
        }
    }

    #[test]
    fn expensive_transmission_means_no_sampling() {
        // If each sample costs more than the whole cheat exposure, t* = 0.
        let params = CostParams::new(1e9, 0.0, 1.0);
        assert_eq!(params.optimal_sample_size(0.5), Some(0));
    }

    #[test]
    fn costly_cheats_push_t_up() {
        let cheap = CostParams::new(1.0, 0.0, 100.0)
            .optimal_sample_size(0.5)
            .unwrap();
        let costly = CostParams::new(1.0, 0.0, 1e8)
            .optimal_sample_size(0.5)
            .unwrap();
        assert!(costly > cheap);
    }

    #[test]
    fn degenerate_parameters_return_none() {
        let p = CostParams::new(1.0, 1.0, 1000.0);
        assert_eq!(p.optimal_sample_size(0.0), None);
        assert_eq!(p.optimal_sample_size(1.0), None);
        assert_eq!(p.optimal_sample_size(-0.5), None);
        assert_eq!(
            CostParams::new(0.0, 1.0, 1000.0).optimal_sample_size(0.5),
            None
        );
        assert_eq!(
            CostParams::new(1.0, 1.0, 0.0).optimal_sample_size(0.5),
            None
        );
    }

    #[test]
    fn total_cost_components_add_up() {
        let p = CostParams::new(2.0, 7.0, 100.0);
        // t=3, q=0.5: 3·2 + 7 + 100·0.125 = 25.5
        assert!((p.total_cost(3, 0.5) - 25.5).abs() < 1e-12);
    }

    #[test]
    fn fig5_crossover_ours_wins_beyond_one_user() {
        // With the paper's Table I costs, ours must beat the linear scheme
        // for every k ≥ 2 and the gap must grow.
        let m = VerificationCostModel::new(SchemeCosts::paper_table_1());
        let series = m.fig5_series(50);
        assert_eq!(series.len(), 50);
        let mut prev_gap = f64::MIN;
        for (k, ours, wang) in series {
            if k >= 2 {
                assert!(ours < wang, "k={k}");
            }
            let gap = wang - ours;
            assert!(gap > prev_gap, "gap grows with k");
            prev_gap = gap;
        }
    }

    #[test]
    fn scheme_cost_orderings() {
        let m = VerificationCostModel::new(SchemeCosts::paper_table_1());
        // Batch beats individual for any k ≥ 3 (2 pairings vs k pairings).
        for k in 3..=50 {
            assert!(m.ours_ms(k) < m.individual_ms(k));
            assert!(m.bgls_ms(k) < m.wang_ms(k), "n+1 < 2n pairings");
        }
        // Ours beats BGLS aggregate verification once k > ~2.
        for k in 4..=50 {
            assert!(m.ours_ms(k) < m.bgls_ms(k), "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "q must lie in (0, 1)")]
    fn invalid_q_panics() {
        CostParams::new(1.0, 1.0, 1.0).total_cost(1, 1.5);
    }
}
