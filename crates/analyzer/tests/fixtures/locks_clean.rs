//! Fixture: the same two-lock shape as `locks_bad.rs`, but every path
//! acquires in the one global order `a` before `b` — the lock-order graph
//! is acyclic and the lint must stay silent.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<Vec<u8>>,
    b: Mutex<Vec<u8>>,
}

impl Pair {
    pub fn forward(&self) -> usize {
        let Ok(ga) = self.a.lock() else { return 0 };
        self.with_b(ga.len())
    }

    fn with_b(&self, base: usize) -> usize {
        let Ok(gb) = self.b.lock() else { return base };
        base.max(gb.len())
    }

    pub fn both(&self) -> usize {
        let Ok(ga) = self.a.lock() else { return 0 };
        let Ok(gb) = self.b.lock() else { return 0 };
        ga.len().max(gb.len())
    }
}
