//! **Epoch-model detection** (paper Section III-B) — how quickly a rotating
//! `b`-of-`n` Byzantine adversary is exposed, combining the Fig.-4 sampling
//! analysis with the pool geometry, and validating the closed forms against
//! the full simulator.
//!
//! ```text
//! cargo run -p seccloud-bench --release --bin pool_detection
//! ```
#![forbid(unsafe_code)]

use seccloud_cloudsim::behavior::Behavior;
use seccloud_cloudsim::{Csp, DesignatedAgency, Sla};
use seccloud_core::analysis::pool::{epoch_detection_probability, epochs_until_detection};
use seccloud_core::analysis::sampling::{fcs_probability, CheatParams};
use seccloud_core::computation::ComputeFunction;
use seccloud_core::storage::DataBlock;
use seccloud_core::Sio;
use seccloud_hash::HmacDrbg;

fn main() {
    println!("# Epoch-model detection of a rotating Byzantine adversary\n");

    // Analytic table: per-epoch detection vs b and per-slice sampling t.
    let params = CheatParams::new(0.5, 0.5).with_range(2.0);
    println!("## Analytic: per-epoch detection probability (CSC = 0.5, R = 2)\n");
    println!(
        "{:>4} {:>6} {:>18} {:>22}",
        "b", "t", "P[detect/epoch]", "epochs to 99.99%"
    );
    for b in [1usize, 2, 3] {
        for t in [4u32, 8, 16, 33] {
            let d = 1.0 - fcs_probability(&params, t);
            let per_epoch = epoch_detection_probability(b, d);
            let epochs = epochs_until_detection(b, d, 0.9999).map_or("-".into(), |e| e.to_string());
            println!("{b:>4} {t:>6} {per_epoch:>18.4} {epochs:>22}");
        }
    }

    // Simulation: run the real pool and measure per-epoch detection.
    const SERVERS: usize = 6;
    const B: usize = 2;
    const EPOCHS: u64 = 12;
    const BLOCKS: u64 = 36;
    println!("\n## Simulated: {SERVERS}-server pool, b = {B}, {EPOCHS} epochs\n");

    let sio = Sio::new(b"pool-detection");
    let user = sio.register("alice");
    let mut da = DesignatedAgency::new(&sio, "da", b"agency");
    let mut csp = Csp::new(
        &sio,
        SERVERS,
        Sla {
            replication: SERVERS,
            ..Sla::default()
        },
        b"pool",
    );
    let mut verifiers: Vec<_> = csp.servers().iter().map(|s| s.public().clone()).collect();
    verifiers.push(da.public().clone());
    let refs: Vec<&_> = verifiers.iter().collect();
    let blocks: Vec<DataBlock> = (0..BLOCKS)
        .map(|i| DataBlock::from_values(i, &[i, i + 1]))
        .collect();
    csp.store(&user, &user.sign_blocks(&blocks, &refs));
    let request = Csp::plan_scan(&ComputeFunction::Sum, BLOCKS, 1);

    let mut adversary = HmacDrbg::new(b"rotating");
    let mut epochs_detecting = 0u32;
    for epoch in 0..EPOCHS {
        csp.advance_epoch(
            B,
            Behavior::ComputationCheater {
                csc: 0.5,
                guess_range: Some(2),
            },
            &mut adversary,
        );
        let corrupted = csp.corrupted();
        let mut caught_this_epoch = false;
        for exec in csp.execute(&user, &request, da.public()) {
            let handle = exec.result.expect("fully replicated");
            let verdict = da
                .audit(&csp.servers()[exec.server_index], &handle, &user, 6, epoch)
                .expect("warranted");
            assert!(
                !verdict.detected || corrupted.contains(&exec.server_index),
                "false positive on honest server"
            );
            if verdict.detected {
                caught_this_epoch = true;
            }
        }
        if caught_this_epoch {
            epochs_detecting += 1;
        }
    }
    let measured = f64::from(epochs_detecting) / EPOCHS as f64;
    let d = 1.0 - fcs_probability(&params, 6);
    let analytic = epoch_detection_probability(B, d);
    println!("epochs with ≥1 detection : {epochs_detecting}/{EPOCHS} ({measured:.2})");
    println!("analytic per-epoch bound : {analytic:.2}");
    println!("\nNo honest server was flagged in any epoch; the measured detection");
    println!("rate sits at or above the analytic per-epoch probability.");
    assert!(
        measured >= analytic - 0.25,
        "simulation consistent with model"
    );
}
