//! Whole-pipeline integration tests: SIO setup → storage upload →
//! computation commitment → delegated sampling audit, across every
//! adversary model of the paper's Section III-B.

use seccloud::cloudsim::behavior::{Behavior, StorageAttack};
use seccloud::cloudsim::{CloudServer, Csp, DesignatedAgency, Sla};
use seccloud::core::computation::{ComputationRequest, ComputeFunction, RequestItem};
use seccloud::core::storage::{audit_blocks, DataBlock};
use seccloud::core::Sio;
use seccloud::hash::HmacDrbg;

fn dataset(n: u64) -> Vec<DataBlock> {
    (0..n)
        .map(|i| DataBlock::from_values(i, &[i, i * i % 101, i + 13]))
        .collect()
}

fn weekly_request(blocks: u64, group: u64) -> ComputationRequest {
    ComputationRequest::new(
        (0..blocks / group)
            .map(|g| RequestItem {
                function: ComputeFunction::Sum,
                positions: (g * group..(g + 1) * group).collect(),
            })
            .collect(),
    )
}

#[test]
fn honest_lifecycle_passes_every_check() {
    let sio = Sio::new(b"e2e-honest");
    let user = sio.register("alice");
    let mut server = CloudServer::new(&sio, "cs", Behavior::Honest, b"s");
    let mut da = DesignatedAgency::new(&sio, "da", b"a");

    let blocks = dataset(24);
    let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
    assert_eq!(server.store(&user, signed), 24);

    // Storage audit.
    let retrieved: Vec<_> = (0..24)
        .filter_map(|p| server.retrieve("alice", p).cloned())
        .collect();
    assert!(audit_blocks(da.credential().key(), user.public(), &retrieved).is_valid());

    // Computation audit at several sampling sizes.
    let request = weekly_request(24, 3);
    let job = server
        .handle_computation(&"alice".to_string(), &request, da.public())
        .unwrap();
    for t in [1, 4, 8] {
        let verdict = da.audit(&server, &job, &user, t, 0).unwrap();
        assert!(!verdict.detected, "t={t}: {:?}", verdict.outcome);
    }
}

#[test]
fn computation_cheater_is_caught_with_full_sampling() {
    let sio = Sio::new(b"e2e-cheat");
    let user = sio.register("alice");
    let mut server = CloudServer::new(
        &sio,
        "cs",
        Behavior::ComputationCheater {
            csc: 0.5,
            guess_range: None,
        },
        b"s",
    );
    let mut da = DesignatedAgency::new(&sio, "da", b"a");
    let blocks = dataset(32);
    let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
    server.store(&user, signed);
    let request = weekly_request(32, 2);
    let job = server
        .handle_computation(&"alice".to_string(), &request, da.public())
        .unwrap();
    let verdict = da.audit(&server, &job, &user, 16, 0).unwrap();
    assert!(
        verdict.detected,
        "a 50% cheater cannot survive a full audit"
    );
    // All failures must be result failures — the inputs were genuine.
    assert!(verdict.outcome.failures.iter().all(|(_, f)| matches!(
        f,
        seccloud::core::computation::AuditFailure::WrongResult { .. }
    )));
}

#[test]
fn storage_corruption_fails_the_computation_audit_signature_check() {
    // A corrupting server computes over data that no longer matches the
    // user's signatures: Algorithm 1's IsSignatureWrong predicate fires.
    let sio = Sio::new(b"e2e-corrupt");
    let user = sio.register("alice");
    let mut server = CloudServer::new(
        &sio,
        "cs",
        Behavior::StorageCheater {
            ssc: 0.0,
            attack: StorageAttack::Corrupt,
        },
        b"s",
    );
    let mut da = DesignatedAgency::new(&sio, "da", b"a");
    let blocks = dataset(8);
    let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
    server.store(&user, signed);
    let request = weekly_request(8, 2);
    let job = server
        .handle_computation(&"alice".to_string(), &request, da.public())
        .unwrap();
    let verdict = da.audit(&server, &job, &user, 4, 0).unwrap();
    assert!(verdict.detected);
    assert!(verdict
        .outcome
        .failures
        .iter()
        .all(|(_, f)| matches!(f, seccloud::core::computation::AuditFailure::BadSignature)));
}

#[test]
fn wrong_position_storage_is_exposed() {
    let sio = Sio::new(b"e2e-wrongpos");
    let user = sio.register("alice");
    let mut server = CloudServer::new(
        &sio,
        "cs",
        Behavior::StorageCheater {
            ssc: 0.0,
            attack: StorageAttack::WrongPosition,
        },
        b"s",
    );
    let da = sio.register_verifier("da");
    let blocks = dataset(6);
    let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
    server.store(&user, signed);
    // Every retrievable block is filed under a shifted position and fails
    // its designated signature check there.
    let mut bad = 0;
    for p in 0..8u64 {
        if let Some(b) = server.retrieve("alice", p) {
            if !b.verify(da.key(), user.public()) {
                bad += 1;
            }
        }
    }
    assert!(bad > 0, "relabelled blocks must fail authentication");
}

#[test]
fn multi_user_multi_server_pool() {
    let sio = Sio::new(b"e2e-pool");
    let mut da = DesignatedAgency::new(&sio, "da", b"a");
    let mut csp = Csp::new(
        &sio,
        3,
        Sla {
            replication: 3,
            ..Sla::default()
        },
        b"pool",
    );
    let users: Vec<_> = ["alice", "bob", "carol"]
        .iter()
        .map(|id| sio.register(id))
        .collect();
    let mut verifiers: Vec<_> = csp.servers().iter().map(|s| s.public().clone()).collect();
    verifiers.push(da.public().clone());
    let refs: Vec<&_> = verifiers.iter().collect();

    for user in &users {
        let blocks = dataset(12);
        csp.store(user, &user.sign_blocks(&blocks, &refs));
    }
    let request = Csp::plan_scan(&ComputeFunction::Average, 12, 4);
    for user in &users {
        for exec in csp.execute(user, &request, da.public()) {
            let handle = exec.result.expect("replicated");
            let verdict = da
                .audit(&csp.servers()[exec.server_index], &handle, user, 3, 0)
                .unwrap();
            assert!(!verdict.detected, "user {}", user.identity());
        }
    }
}

#[test]
fn epoch_rotation_catches_each_fresh_corruption_set() {
    let sio = Sio::new(b"e2e-epochs");
    let user = sio.register("alice");
    let mut da = DesignatedAgency::new(&sio, "da", b"a");
    let mut csp = Csp::new(
        &sio,
        4,
        Sla {
            replication: 4,
            ..Sla::default()
        },
        b"pool",
    );
    let mut verifiers: Vec<_> = csp.servers().iter().map(|s| s.public().clone()).collect();
    verifiers.push(da.public().clone());
    let refs: Vec<&_> = verifiers.iter().collect();
    csp.store(&user, &user.sign_blocks(&dataset(16), &refs));

    let request = Csp::plan_scan(&ComputeFunction::Sum, 16, 2);
    let mut adversary = HmacDrbg::new(b"adv");
    for epoch in 0..3u64 {
        csp.advance_epoch(
            1,
            Behavior::ComputationCheater {
                csc: 0.0,
                guess_range: None,
            },
            &mut adversary,
        );
        let corrupted = csp.corrupted();
        for exec in csp.execute(&user, &request, da.public()) {
            let handle = exec.result.expect("replicated");
            let verdict = da
                .audit(
                    &csp.servers()[exec.server_index],
                    &handle,
                    &user,
                    handle.request.len(),
                    epoch,
                )
                .unwrap();
            assert_eq!(
                verdict.detected,
                corrupted.contains(&exec.server_index),
                "epoch {epoch}, server {}",
                exec.server_index
            );
        }
    }
}
