//! Montgomery-form prime fields over 4×64-bit moduli.
//!
//! The [`mont_field!`] macro instantiates a complete prime-field type from a
//! modulus given in hex. All Montgomery constants (`R² mod m`, `-m⁻¹ mod
//! 2⁶⁴`) are *derived* in `const fn`s rather than transcribed, eliminating a
//! whole class of constant-typo bugs.

/// Parses a 64-hex-digit string into 4 little-endian limbs at compile time.
///
/// # Panics
///
/// Panics (at compile time when used in a `const`) if the string is not
/// exactly 64 hexadecimal digits.
pub const fn parse_hex_limbs(s: &str) -> [u64; 4] {
    let bytes = s.as_bytes();
    assert!(bytes.len() == 64, "modulus hex must be 64 digits");
    let mut limbs = [0u64; 4];
    let mut i = 0;
    while i < 64 {
        let c = bytes[63 - i];
        let d = match c {
            b'0'..=b'9' => (c - b'0') as u64,
            b'a'..=b'f' => (c - b'a' + 10) as u64,
            b'A'..=b'F' => (c - b'A' + 10) as u64,
            _ => panic!("invalid hex digit in modulus"),
        };
        limbs[i / 16] |= d << (4 * (i % 16));
        i += 1;
    }
    limbs
}

/// Computes `-m[0]⁻¹ mod 2⁶⁴` for odd `m[0]` by Newton iteration.
pub const fn mont_neg_inv(m0: u64) -> u64 {
    // x ← x(2 − m0·x) doubles the number of correct low bits each round.
    let mut x: u64 = 1;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(x)));
        i += 1;
    }
    x.wrapping_neg()
}

/// Computes the full 512-bit square `m²` of a 4-limb modulus at compile
/// time. The lazy-reduction backends add `m²` to keep `a₀b₀ − a₁b₁`
/// non-negative before a single Montgomery reduction (see `arch::generic`).
pub const fn mont_m2(m: [u64; 4]) -> [u64; 8] {
    let mut t = [0u64; 8];
    let mut i = 0;
    while i < 4 {
        let mut carry = 0u128;
        let mut j = 0;
        while j < 4 {
            let acc = (t[i + j] as u128) + (m[i] as u128) * (m[j] as u128) + carry;
            t[i + j] = acc as u64;
            carry = acc >> 64;
            j += 1;
        }
        t[i + 4] = carry as u64;
        i += 1;
    }
    t
}

/// Halves `x` modulo an odd `m` (both `< 2²⁵⁵`): `x/2` when even, else
/// `(x + m)/2` — the carry out of the addition cannot occur because
/// `x < m < 2²⁵⁵`.
fn half_mod(x: &seccloud_bigint::U256, m: &seccloud_bigint::U256) -> seccloud_bigint::U256 {
    if x.is_odd() {
        x.wrapping_add(m).shr(1)
    } else {
        x.shr(1)
    }
}

/// `a − b mod m` for operands already reduced below `m`.
fn sub_mod_u256(
    a: &seccloud_bigint::U256,
    b: &seccloud_bigint::U256,
    m: &seccloud_bigint::U256,
) -> seccloud_bigint::U256 {
    let (d, borrow) = a.overflowing_sub(b);
    if borrow {
        d.wrapping_add(m)
    } else {
        d
    }
}

/// Inverse of `a` modulo an odd `m < 2²⁵⁵` via binary extended Euclid.
///
/// Allocation-free and ~an order of magnitude faster than a Fermat ladder,
/// but **variable-time** in `a` — callers must restrict it to public
/// operands. Returns `None` when `a` is zero or shares a factor with `m`
/// (never for prime `m` and `0 < a < m`).
pub fn modinv_odd(
    a: &seccloud_bigint::U256,
    m: &seccloud_bigint::U256,
) -> Option<seccloud_bigint::U256> {
    use seccloud_bigint::U256;
    if a.is_zero() || !m.is_odd() {
        return None;
    }
    // Invariants: u ≡ x1·a and v ≡ x2·a (mod m); x1, x2 < m.
    let mut u = *a;
    let mut v = *m;
    let mut x1 = U256::ONE;
    let mut x2 = U256::ZERO;
    while u != U256::ONE && v != U256::ONE {
        while !u.is_odd() {
            u = u.shr(1);
            x1 = half_mod(&x1, m);
        }
        while !v.is_odd() {
            v = v.shr(1);
            x2 = half_mod(&x2, m);
        }
        // Both odd now; subtract the smaller to strip more factors of two.
        if u >= v {
            u = u.wrapping_sub(&v);
            x1 = sub_mod_u256(&x1, &x2, m);
        } else {
            v = v.wrapping_sub(&u);
            x2 = sub_mod_u256(&x2, &x1, m);
        }
        if u.is_zero() || v.is_zero() {
            return None; // gcd(a, m) = v (resp. u) ≠ 1
        }
    }
    Some(if u == U256::ONE { x1 } else { x2 })
}

/// Computes `2⁵¹² mod m` (the Montgomery `R²`) for a 4-limb modulus with
/// `2²⁵³ ≤ m < 2²⁵⁵` by 512 modular doublings.
pub const fn mont_r2(m: [u64; 4]) -> [u64; 4] {
    const fn geq(a: [u64; 4], b: [u64; 4]) -> bool {
        let mut i = 3usize;
        loop {
            if a[i] > b[i] {
                return true;
            }
            if a[i] < b[i] {
                return false;
            }
            if i == 0 {
                return true;
            }
            i -= 1;
        }
    }
    const fn sub(a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
        let mut out = [0u64; 4];
        let mut borrow = 0u128;
        let mut i = 0;
        while i < 4 {
            let t = (a[i] as u128)
                .wrapping_sub(b[i] as u128)
                .wrapping_sub(borrow);
            out[i] = t as u64;
            borrow = (t >> 64) & 1;
            i += 1;
        }
        out
    }
    let mut v = [1u64, 0, 0, 0];
    let mut i = 0;
    while i < 512 {
        // v ← 2v (no carry out: v < m < 2²⁵⁵ so 2v < 2²⁵⁶)
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        let mut j = 0;
        while j < 4 {
            out[j] = (v[j] << 1) | carry;
            carry = v[j] >> 63;
            j += 1;
        }
        v = out;
        if carry == 1 || geq(v, m) {
            // When carry==1 the true value is v + 2²⁵⁶; since m > 2²⁵³ and
            // the pre-double value was < m, v + 2²⁵⁶ < 2m, one subtract wraps
            // correctly in 256-bit arithmetic.
            v = sub(v, m);
        }
        i += 1;
    }
    v
}

/// Defines a Montgomery prime-field type.
///
/// ```ignore
/// mont_field!(Fp, "30644e72...fd47", "BN254 base field");
/// ```
#[macro_export]
macro_rules! mont_field {
    ($name:ident, $modulus_hex:expr, $doc:expr) => {
        #[doc = $doc]
        ///
        /// Elements are stored in Montgomery form (`x·R mod m`, `R = 2²⁵⁶`);
        /// all arithmetic is constant-width 4-limb CIOS.
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name {
            repr: [u64; 4],
        }

        impl $name {
            /// The field modulus as little-endian limbs.
            pub const MODULUS: [u64; 4] = $crate::mont::parse_hex_limbs($modulus_hex);
            /// The Montgomery constant `-m⁻¹ mod 2⁶⁴` (backend plumbing).
            #[doc(hidden)]
            pub const NEG_INV: u64 = $crate::mont::mont_neg_inv(Self::MODULUS[0]);
            /// The full 512-bit `m²` (lazy-reduction backend plumbing).
            #[doc(hidden)]
            pub const M2: [u64; 8] = $crate::mont::mont_m2(Self::MODULUS);
            const R2: [u64; 4] = $crate::mont::mont_r2(Self::MODULUS);

            /// The modulus as a [`seccloud_bigint::U256`].
            pub fn modulus() -> ::seccloud_bigint::U256 {
                ::seccloud_bigint::U256::from_limbs(Self::MODULUS)
            }

            /// The zero element.
            pub const fn zero() -> Self {
                Self { repr: [0; 4] }
            }

            /// The one element (Montgomery form of 1 is `R mod m`, derived).
            pub fn one() -> Self {
                Self::from_u64(1)
            }

            /// Converts a small integer into the field.
            pub fn from_u64(v: u64) -> Self {
                Self::from_u256(&::seccloud_bigint::U256::from_u64(v))
            }

            /// Converts a 256-bit integer into the field, reducing mod `m`.
            pub fn from_u256(v: &::seccloud_bigint::U256) -> Self {
                let mut raw = *v;
                let m = Self::modulus();
                while raw >= m {
                    raw = raw.wrapping_sub(&m);
                }
                // To Montgomery form: raw · R = montmul(raw, R²).
                Self {
                    repr: Self::mont_mul(raw.limbs(), &Self::R2),
                }
            }

            /// Converts 64 wide hash bytes into a near-uniform field element
            /// (big-endian interpretation reduced mod `m`).
            ///
            /// # Panics
            ///
            /// Panics if `bytes.len() != 64`.
            pub fn from_bytes_wide(bytes: &[u8]) -> Self {
                assert_eq!(bytes.len(), 64, "wide reduction expects 64 bytes");
                let hi =
                    ::seccloud_bigint::U256::from_be_bytes(&bytes[..32]).expect("32 bytes fit");
                let lo =
                    ::seccloud_bigint::U256::from_be_bytes(&bytes[32..]).expect("32 bytes fit");
                // hi·2²⁵⁶ + lo = hi·R + lo; the Montgomery form of hi·R is
                // montmul(hi·R, R²)·R⁻¹… simpler: lift both and use the field:
                // result = from(hi) · 2²⁵⁶_as_element + from(lo), where the
                // element 2²⁵⁶ mod m has Montgomery repr R² (since mont(x) =
                // x·R and x = R means repr R²·R·R⁻¹ = R²).
                let two_256 = Self { repr: Self::R2 };
                Self::from_u256(&hi)
                    .mul(&two_256)
                    .add(&Self::from_u256(&lo))
            }

            /// Returns the canonical (non-Montgomery) representation.
            pub fn to_u256(&self) -> ::seccloud_bigint::U256 {
                let one = [1u64, 0, 0, 0];
                ::seccloud_bigint::U256::from_limbs(Self::mont_mul(&self.repr, &one))
            }

            /// Serializes to 32 canonical big-endian bytes.
            pub fn to_be_bytes(&self) -> [u8; 32] {
                let v = self.to_u256().to_be_bytes();
                v.try_into().expect("U256 is 32 bytes")
            }

            /// Parses 32 canonical big-endian bytes; `None` if ≥ modulus.
            pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<Self> {
                let v = ::seccloud_bigint::U256::from_be_bytes(bytes)?;
                if v >= Self::modulus() {
                    return None;
                }
                Some(Self::from_u256(&v))
            }

            /// Whether the element is zero.
            pub fn is_zero(&self) -> bool {
                self.repr == [0; 4]
            }

            /// Whether the canonical representation is odd (used to pick a
            /// deterministic square root / point sign).
            pub fn is_odd(&self) -> bool {
                self.to_u256().is_odd()
            }

            /// Field addition.
            #[inline]
            pub fn add(&self, rhs: &Self) -> Self {
                Self {
                    repr: $crate::arch::add_mod(&self.repr, &rhs.repr, &Self::MODULUS),
                }
            }

            /// Field subtraction.
            #[inline]
            pub fn sub(&self, rhs: &Self) -> Self {
                Self {
                    repr: $crate::arch::sub_mod(&self.repr, &rhs.repr, &Self::MODULUS),
                }
            }

            /// Additive inverse.
            #[inline]
            pub fn neg(&self) -> Self {
                Self {
                    repr: $crate::arch::neg_mod(&self.repr, &Self::MODULUS),
                }
            }

            /// Doubling.
            #[inline]
            pub fn double(&self) -> Self {
                self.add(self)
            }

            /// Field multiplication (CIOS Montgomery).
            #[inline]
            pub fn mul(&self, rhs: &Self) -> Self {
                Self {
                    repr: Self::mont_mul(&self.repr, &rhs.repr),
                }
            }

            /// Squaring.
            #[inline]
            pub fn square(&self) -> Self {
                self.mul(self)
            }

            /// Exponentiation by little-endian limbs.
            pub fn pow(&self, exp: &[u64]) -> Self {
                <Self as $crate::traits::FieldElement>::pow_limbs(self, exp)
            }

            /// Multiplicative inverse via Fermat (`a^(m-2)`); `None` for 0.
            ///
            /// Fixed sequence of Montgomery multiplications — use this for
            /// secret operands. For public data (curve points in pairing
            /// computations) prefer [`Self::inverse_vartime`].
            pub fn inverse(&self) -> Option<Self> {
                if self.is_zero() {
                    return None;
                }
                let exp = Self::modulus().wrapping_sub(&::seccloud_bigint::U256::from_u64(2));
                Some(self.pow(exp.limbs()))
            }

            /// Multiplicative inverse via binary extended Euclid
            /// ([`crate::mont::modinv_odd`]); `None` for 0. Several times
            /// faster than the Fermat ladder but **variable-time** in the
            /// operand — only for *public* values (Miller-loop line slopes,
            /// affine conversions of public points), never key- or
            /// scalar-dependent data.
            pub fn inverse_vartime(&self) -> Option<Self> {
                // Operating directly on the Montgomery residue aR yields
                // (aR)⁻¹ = a⁻¹R⁻¹; two R² Montgomery factors lift it back
                // to the Montgomery image a⁻¹R.
                let raw = ::seccloud_bigint::U256::from_limbs(self.repr);
                let inv = $crate::mont::modinv_odd(&raw, &Self::modulus())?;
                let t = Self::mont_mul(inv.limbs(), &Self::R2);
                Some(Self {
                    repr: Self::mont_mul(&t, &Self::R2),
                })
            }

            #[inline]
            fn mont_mul(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
                $crate::arch::mont_mul(a, b, &Self::MODULUS, Self::NEG_INV)
            }

            /// The raw Montgomery-form limbs (backend plumbing; always the
            /// canonical representative `< m`).
            #[doc(hidden)]
            #[inline]
            pub fn repr(&self) -> &[u64; 4] {
                &self.repr
            }

            /// Rebuilds an element from raw Montgomery-form limbs. The
            /// caller must pass a canonical (`< m`) representative, as
            /// produced by every `arch` backend function.
            #[doc(hidden)]
            #[inline]
            pub fn from_repr_unchecked(repr: [u64; 4]) -> Self {
                Self { repr }
            }

            /// Constant-time select: `a` when `choice == 0`, `b` when
            /// `choice == 1`, via masked limb merges — no branch, no
            /// data-dependent load. `choice` **must** be 0 or 1.
            #[inline]
            pub fn ct_select(a: &Self, b: &Self, choice: u64) -> Self {
                let mask = choice.wrapping_neg();
                let mut repr = [0u64; 4];
                for i in 0..4 {
                    repr[i] = (a.repr[i] & !mask) | (b.repr[i] & mask);
                }
                Self { repr }
            }

            /// Constant-time zero test: `1` when zero, `0` otherwise.
            /// (Montgomery form maps 0 to 0, so a limb OR-fold suffices.)
            #[inline]
            pub fn ct_is_zero(&self) -> u64 {
                let d = self.repr[0] | self.repr[1] | self.repr[2] | self.repr[3];
                (!(d | d.wrapping_neg())) >> 63
            }
        }

        impl $crate::traits::FieldElement for $name {
            fn zero() -> Self {
                Self::zero()
            }
            fn one() -> Self {
                Self::one()
            }
            fn is_zero(&self) -> bool {
                Self::is_zero(self)
            }
            fn add(&self, rhs: &Self) -> Self {
                Self::add(self, rhs)
            }
            fn sub(&self, rhs: &Self) -> Self {
                Self::sub(self, rhs)
            }
            fn neg(&self) -> Self {
                Self::neg(self)
            }
            fn mul(&self, rhs: &Self) -> Self {
                Self::mul(self, rhs)
            }
            fn square(&self) -> Self {
                Self::square(self)
            }
            fn double(&self) -> Self {
                Self::double(self)
            }
            fn inverse(&self) -> Option<Self> {
                Self::inverse(self)
            }
            fn ct_select(a: &Self, b: &Self, choice: u64) -> Self {
                Self::ct_select(a, b, choice)
            }
            fn ct_is_zero(&self) -> u64 {
                Self::ct_is_zero(self)
            }
        }

        impl ::core::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {
                write!(f, "{}({:?})", stringify!($name), self.to_u256())
            }
        }

        impl ::core::fmt::Display for $name {
            fn fmt(&self, f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {
                write!(f, "{:?}", self.to_u256())
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::zero()
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self::from_u64(v)
            }
        }

        impl ::core::ops::Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name::add(&self, &rhs)
            }
        }
        impl ::core::ops::Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name::sub(&self, &rhs)
            }
        }
        impl ::core::ops::Mul for $name {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name::mul(&self, &rhs)
            }
        }
        impl ::core::ops::Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name::neg(&self)
            }
        }
    };
}
