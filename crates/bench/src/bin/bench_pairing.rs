//! Writes `BENCH_pairing.json` — the machine-readable pairing-performance
//! trajectory. Future PRs rerun this bin and diff the numbers to track
//! regressions/improvements of the hot path:
//!
//! * single pairing (unprepared ate) vs prepared pairing against a fixed
//!   G2 argument (ops/sec + speedup);
//! * the same pair of rates on *every* arithmetic backend this machine can
//!   run (`reference`, `generic`, and `x86_64` when the CPU has BMI2/ADX),
//!   switched in-process — the A/B evidence for the backend dispatch layer;
//! * G1 scalar multiplication: GLV endomorphism split vs plain wNAF;
//! * designated batch verification at ℓ ∈ {16, 64, 256} vs ℓ individual
//!   verifications, serial and parallel.
//!
//! Schema v2 is a superset of v1: every v1 field keeps its name and
//! meaning; `arch_*`, `backends` and the scalar-mul rates are new.
//!
//! Run with `cargo run --release -p seccloud-bench --bin bench_pairing`.
//! The file lands in the current working directory.
#![forbid(unsafe_code)]

use seccloud_bench::measure_ms;
use seccloud_ibs::{designate, sign, BatchItem, BatchVerifier, MasterKey};
use seccloud_pairing::arch::{self, Backend};
use seccloud_pairing::{hash_to_g1, hash_to_g2, pairing, pairing_prepared, Fr, G2Prepared, G1};

fn ops_per_sec(ms_per_op: f64) -> f64 {
    1_000.0 / ms_per_op
}

fn make_items(n: usize) -> (seccloud_ibs::VerifierKey, Vec<BatchItem>) {
    let sio = MasterKey::from_seed(b"bench-pairing-json");
    let server = sio.extract_verifier("cs");
    let items = (0..n)
        .map(|i| {
            let user = sio.extract_user(&format!("user-{}", i % 4));
            let msg = format!("block-{i}").into_bytes();
            let sig = designate(&sign(&user, &msg, b"n"), server.public());
            BatchItem {
                signer: user.public().clone(),
                message: msg,
                signature: sig,
            }
        })
        .collect();
    (server, items)
}

fn main() {
    let p = hash_to_g1(b"bench-p").to_affine();
    let q = hash_to_g2(b"bench-q").to_affine();
    let prepared = G2Prepared::from(&q);

    // The backend the process would use on its own, and what forced it (if
    // anything). Captured before the per-backend sweep overrides it.
    let auto = arch::active();
    let arch_override = std::env::var("SECCLOUD_ARCH").ok();

    // Per-backend A/B: pin each runnable backend and measure the same two
    // pairing rates. All backends return identical canonical values, so the
    // switch is safe mid-process; the auto-detected backend is restored for
    // the headline numbers below.
    let mut backend_rows = String::new();
    for (i, bk) in Backend::available().into_iter().enumerate() {
        arch::set_backend(bk);
        let plain = measure_ms(2, 10, || pairing(&p, &q));
        let prep = measure_ms(2, 10, || pairing_prepared(&p, &prepared));
        if i > 0 {
            backend_rows.push_str(",\n");
        }
        backend_rows.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"pairing_ops_per_sec\": {:.3}, \
             \"prepared_pairing_ops_per_sec\": {:.3} }}",
            bk.name(),
            ops_per_sec(plain),
            ops_per_sec(prep),
        ));
        println!(
            "backend {:>9}: pairing {plain:.2} ms, prepared {prep:.2} ms",
            bk.name()
        );
    }
    arch::set_backend(auto);

    // Headline single-pairing rates on the auto-detected backend. The
    // prepared case models the protocol's real shape: the G2 argument (a
    // verifier key) is fixed, so preparation is amortized across many calls
    // and excluded from the per-op time.
    let plain_ms = measure_ms(3, 30, || pairing(&p, &q));
    let prepared_ms = measure_ms(3, 30, || pairing_prepared(&p, &prepared));
    let prep_cost_ms = measure_ms(1, 10, || G2Prepared::from(&q));

    // G1 scalar multiplication: the GLV endomorphism split (mul_fr) vs the
    // plain full-width wNAF walk it replaced on the audit path.
    let g = G1::generator();
    let k = Fr::hash(b"bench-scalar");
    let limbs = *k.to_u256().limbs();
    let glv_ms = measure_ms(10, 200, || g.mul_fr(&k));
    let wnaf_ms = measure_ms(10, 200, || g.mul_limbs_wnaf(&limbs));
    println!(
        "g1 scalar mul: glv {:.1} µs, wnaf {:.1} µs → {:.2}x",
        glv_ms * 1_000.0,
        wnaf_ms * 1_000.0,
        wnaf_ms / glv_ms
    );

    let mut batch_rows = String::new();
    for (i, &ell) in [16usize, 64, 256].iter().enumerate() {
        let (server, items) = make_items(ell);
        let iters = (512 / ell).max(2);
        let batch_ms = measure_ms(1, iters, || {
            let mut batch = BatchVerifier::new();
            for item in &items {
                batch.push_item(item);
            }
            assert!(batch.verify(&server));
        });
        let singles_ms = measure_ms(1, iters, || {
            assert!(seccloud_ibs::verify_individually(&items, &server).is_none());
        });
        let singles_par_ms = measure_ms(1, iters, || {
            assert!(seccloud_ibs::verify_individually_parallel(&items, &server).is_none());
        });
        if i > 0 {
            batch_rows.push_str(",\n");
        }
        batch_rows.push_str(&format!(
            "    {{ \"ell\": {ell}, \"batch_ops_per_sec\": {:.3}, \
             \"singles_ops_per_sec\": {:.3}, \"parallel_singles_ops_per_sec\": {:.3}, \
             \"batch_speedup_vs_singles\": {:.2}, \"batch_speedup_vs_parallel_singles\": {:.2} }}",
            ops_per_sec(batch_ms),
            ops_per_sec(singles_ms),
            ops_per_sec(singles_par_ms),
            singles_ms / batch_ms,
            singles_par_ms / batch_ms,
        ));
        println!(
            "batch ℓ={ell:>3}: batch {batch_ms:.2} ms, singles {singles_ms:.2} ms \
             (serial), {singles_par_ms:.2} ms (parallel) — batch speedup {:.2}x",
            singles_ms / batch_ms
        );
    }

    let arch_available = Backend::available()
        .iter()
        .map(|b| format!("\"{}\"", b.name()))
        .collect::<Vec<_>>()
        .join(", ");
    let arch_override_json = match &arch_override {
        Some(v) => format!("\"{v}\""),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"schema\": \"seccloud-bench-pairing/v2\",\n  \"threads\": {},\n  \
         \"arch_backend\": \"{}\",\n  \"arch_override\": {},\n  \
         \"arch_available\": [{}],\n  \
         \"pairing_ops_per_sec\": {:.3},\n  \"prepared_pairing_ops_per_sec\": {:.3},\n  \
         \"prepared_speedup\": {:.3},\n  \"g2_preparation_ms\": {:.4},\n  \
         \"g1_mul_glv_ops_per_sec\": {:.3},\n  \"g1_mul_wnaf_ops_per_sec\": {:.3},\n  \
         \"glv_speedup_vs_wnaf\": {:.3},\n  \
         \"backends\": [\n{}\n  ],\n  \
         \"batch_verify\": [\n{}\n  ]\n}}\n",
        seccloud_parallel::num_threads(),
        auto.name(),
        arch_override_json,
        arch_available,
        ops_per_sec(plain_ms),
        ops_per_sec(prepared_ms),
        plain_ms / prepared_ms,
        prep_cost_ms,
        ops_per_sec(glv_ms),
        ops_per_sec(wnaf_ms),
        wnaf_ms / glv_ms,
        backend_rows,
        batch_rows,
    );
    std::fs::write("BENCH_pairing.json", &json).expect("write BENCH_pairing.json");
    println!(
        "\npairing {:.2} ms, prepared {:.2} ms → {:.2}x; wrote BENCH_pairing.json",
        plain_ms,
        prepared_ms,
        plain_ms / prepared_ms
    );
}
