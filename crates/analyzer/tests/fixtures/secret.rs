//! Bad fixture for the `secret` rule: a secret type that derives `Debug`,
//! never wipes itself, and reaches a format sink.
//! Never compiled — lexed by the analyzer self-tests only.

// lint: secret
#[derive(Clone, Debug)]
pub struct MasterSecret {
    scalar: [u8; 32],
}

pub fn log_secret(s: &MasterSecret) -> String {
    format!("loaded secret {:?}", MasterSecret::clone(s))
}
