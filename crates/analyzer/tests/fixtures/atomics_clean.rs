//! Clean twin of `atomics_bad.rs`: every ordering choice carries a
//! justification annotation.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);
static FLAG: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    // lint: ordering(SeqCst: the counter is the sole uniqueness guarantee, increments need a single total order)
    COUNTER.fetch_add(1, Ordering::SeqCst)
}

pub fn stats() -> u64 {
    // lint: ordering(Relaxed: monotonic stats read, publishes no other memory)
    COUNTER.load(Ordering::Relaxed)
}

pub fn publish(v: u64) {
    // lint: ordering(SeqCst: the flag gates reads of data written before the store; a single total order keeps the handoff safe)
    FLAG.store(v, Ordering::SeqCst);
}
