//! Length-framed transport: the byte layer between one wire message and a
//! kernel socket.
//!
//! Every exchange on a SecCloud connection is a sequence of frames:
//!
//! ```text
//! +----------+----------------+------------------+
//! | magic    | length (u32 BE)| payload          |
//! | "SCN1"   | ≤ MAX_FRAME_LEN| `length` bytes   |
//! +----------+----------------+------------------+
//! ```
//!
//! The payload is exactly one versioned wire message (a request or a
//! response from [`crate::proto`]). The framing layer owns the mapping
//! from socket misbehaviour into the [`WireError`] taxonomy, so every
//! caller above it inherits correct transient-vs-byzantine classification
//! for free:
//!
//! * a read/write that misses the connection's deadline →
//!   [`WireError::Timeout`] (transient — the peer may just be slow);
//! * EOF or reset **between** frames → [`WireError::ConnectionLost`]
//!   (transient — reconnect and retry);
//! * EOF **inside** a frame (header or payload cut short) →
//!   [`WireError::TruncatedFrame`] (transient — the classic partial-read
//!   failure the in-memory harness could never produce);
//! * a header declaring more than [`MAX_FRAME_LEN`] bytes →
//!   [`WireError::FrameTooLarge`], rejected **before any allocation** and
//!   classified non-transient: length bombs are composed, not weathered.
//!
//! Reads reassemble short counts in a loop — a peer (or a chaos proxy)
//! trickling a frame out one byte at a time yields the same bytes as a
//! single write, which is exactly the partial-read behaviour `ROADMAP`
//! item 5 wants exercised under the resilience layer.

use std::io::{Read, Write};

use seccloud_core::wire::WireError;

/// Magic prefix on every frame: "SCN1" (SecCloud Net, framing v1).
pub const FRAME_MAGIC: [u8; 4] = *b"SCN1";

/// Hard cap on a frame's declared payload length (16 MiB). Checked against
/// the header before any buffer is sized, so a hostile 4 GiB declaration
/// costs the receiver eight header bytes and nothing more.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Bytes of frame header: magic + u32 big-endian payload length.
pub const FRAME_HEADER_LEN: usize = FRAME_MAGIC.len() + 4;

/// Encodes the header + payload as one contiguous byte string (what
/// actually crosses the socket; the chaos proxy mangles this form).
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Classifies one I/O error from a socket operation. `mid_frame` says
/// whether part of a frame had already been transferred when it failed.
fn classify_io(e: &std::io::Error, mid_frame: bool) -> WireError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => WireError::Timeout,
        ErrorKind::UnexpectedEof => {
            if mid_frame {
                WireError::TruncatedFrame
            } else {
                WireError::ConnectionLost
            }
        }
        _ => {
            // Reset, aborted, broken pipe, refused, interrupted-and-failed:
            // from the verifier's seat these are all "the connection died",
            // and whether a frame was in flight decides the variant.
            if mid_frame {
                WireError::TruncatedFrame
            } else {
                WireError::ConnectionLost
            }
        }
    }
}

/// Writes one frame (header + payload) to `w`.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if `payload` exceeds [`MAX_FRAME_LEN`]
/// (never put on the wire); [`WireError::Timeout`] on a missed write
/// deadline; [`WireError::ConnectionLost`] / [`WireError::TruncatedFrame`]
/// when the peer drops the connection under the write.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge);
    }
    let frame = encode_frame(payload);
    let mut written = 0usize;
    while written < frame.len() {
        match w.write(frame.get(written..).unwrap_or_default()) {
            Ok(0) => {
                return Err(if written == 0 {
                    WireError::ConnectionLost
                } else {
                    WireError::TruncatedFrame
                })
            }
            Ok(n) => written = written.saturating_add(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(classify_io(&e, written > 0)),
        }
    }
    match w.flush() {
        Ok(()) => Ok(()),
        Err(e) => Err(classify_io(&e, true)),
    }
}

/// Fills `buf` from `r`, tolerating short reads. Returns how many bytes
/// landed before a clean EOF (== `buf.len()` on success).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], already: bool) -> Result<usize, WireError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(buf.get_mut(got..).unwrap_or_default()) {
            Ok(0) => return Ok(got),
            Ok(n) => got = got.saturating_add(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(classify_io(&e, already || got > 0)),
        }
    }
    Ok(got)
}

/// Reads one frame's payload from `r`, reassembling partial reads.
///
/// # Errors
///
/// See the module docs for the full socket-condition → [`WireError`]
/// mapping; additionally a corrupt magic prefix is [`WireError::BadTag`]
/// carrying the first differing byte.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let got = read_full(r, &mut header, false)?;
    if got == 0 {
        // Clean close on a frame boundary: the connection is gone, but no
        // message was damaged.
        return Err(WireError::ConnectionLost);
    }
    if got < header.len() {
        return Err(WireError::TruncatedFrame);
    }
    if header.get(..FRAME_MAGIC.len()) != Some(&FRAME_MAGIC[..]) {
        // Desynchronized or hostile peer; surface the first byte so logs
        // show what actually arrived.
        return Err(WireError::BadTag(header.first().copied().unwrap_or(0)));
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(header.get(FRAME_MAGIC.len()..).unwrap_or_default());
    let len = u32::from_be_bytes(len_bytes) as usize;
    // The hard cap gates the allocation below: a length bomb dies here
    // having cost only the 8 header bytes.
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge);
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload, true)?;
    if got < payload.len() {
        return Err(WireError::TruncatedFrame);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that serves a byte script in fixed-size dribbles, proving
    /// the reassembly loop tolerates arbitrary read fragmentation.
    struct Dribble {
        bytes: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let end = (self.pos + self.chunk).min(self.bytes.len());
            let n = (end - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn round_trip_through_a_buffer() {
        let payload = b"the payload".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(wire, encode_frame(&payload));
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
    }

    #[test]
    fn one_byte_dribble_reassembles() {
        let payload: Vec<u8> = (0..=255u8).collect();
        for chunk in [1, 2, 3, 7, 300] {
            let mut r = Dribble {
                bytes: encode_frame(&payload),
                pos: 0,
                chunk,
            };
            assert_eq!(read_frame(&mut r).unwrap(), payload, "chunk={chunk}");
        }
    }

    #[test]
    fn eof_on_boundary_is_connection_lost() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut empty), Err(WireError::ConnectionLost));
    }

    #[test]
    fn eof_inside_header_or_payload_is_truncated_frame() {
        let full = encode_frame(b"abcdef");
        for cut in 1..full.len() {
            let mut r = std::io::Cursor::new(full[..cut].to_vec());
            assert_eq!(
                read_frame(&mut r),
                Err(WireError::TruncatedFrame),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn length_bomb_is_rejected_before_allocation() {
        let mut wire = FRAME_MAGIC.to_vec();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        // No payload follows; if the cap check ran after allocation this
        // would try to reserve 4 GiB.
        let mut r = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r), Err(WireError::FrameTooLarge));
        assert!(!WireError::FrameTooLarge.is_transient());
    }

    #[test]
    fn oversized_write_is_refused_locally() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert_eq!(
            write_frame(&mut NullSink, &huge),
            Err(WireError::FrameTooLarge)
        );
    }

    #[test]
    fn corrupt_magic_is_bad_tag() {
        let mut wire = encode_frame(b"x");
        wire[0] = b'X';
        let mut r = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r), Err(WireError::BadTag(b'X')));
    }
}
