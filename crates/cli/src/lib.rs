//! File-system-backed SecCloud operations — the logic behind the
//! `seccloud` demo binary.
//!
//! State layout under the chosen root directory:
//!
//! ```text
//! <root>/system.seed                   — trust root (simulated SIO seed)
//! <root>/servers/<server>/<owner>/<pos>.blk — stored signed blocks (wire)
//! ```
//!
//! Every artifact crossing a command boundary is in the canonical wire
//! format, so the files are interoperable with any other tooling built on
//! `seccloud-core::wire`.
#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};

use seccloud_core::computation::{
    verify_response, AuditChallenge, CommitmentSession, ComputationRequest, ComputeFunction,
    RequestItem,
};
use seccloud_core::storage::{DataBlock, SignedBlock};
use seccloud_core::wire::WireMessage;
use seccloud_core::Sio;
use seccloud_hash::HmacDrbg;

/// Errors surfaced by CLI operations.
#[derive(Debug)]
pub enum CliError {
    /// An I/O failure (path included in the message).
    Io(String),
    /// The state directory is not initialized (`setup` not run).
    NotInitialized,
    /// A block file failed to decode or authenticate.
    BadBlock(String),
    /// Invalid user input.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(m) => write!(f, "i/o error: {m}"),
            CliError::NotInitialized => write!(f, "state dir not initialized — run `setup` first"),
            CliError::BadBlock(m) => write!(f, "bad block: {m}"),
            CliError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

fn io_err<E: std::fmt::Display>(path: &Path) -> impl FnOnce(E) -> CliError + '_ {
    move |e| CliError::Io(format!("{}: {e}", path.display()))
}

/// A handle to an initialized state directory.
pub struct Workspace {
    root: PathBuf,
    sio: Sio,
}

impl Workspace {
    /// Initializes (or re-opens) the state directory with the given system
    /// seed; writing the seed file models the offline SIO setup.
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory or writing the seed.
    pub fn setup(root: &Path, seed: &str) -> Result<Self, CliError> {
        fs::create_dir_all(root).map_err(io_err(root))?;
        let seed_path = root.join("system.seed");
        fs::write(&seed_path, seed).map_err(io_err(&seed_path))?;
        Self::open(root)
    }

    /// Opens an existing state directory.
    ///
    /// # Errors
    ///
    /// [`CliError::NotInitialized`] when the seed file is absent.
    pub fn open(root: &Path) -> Result<Self, CliError> {
        let seed_path = root.join("system.seed");
        let seed = fs::read(&seed_path).map_err(|_| CliError::NotInitialized)?;
        Ok(Self {
            root: root.to_owned(),
            sio: Sio::new(&seed),
        })
    }

    /// The simulated SIO.
    pub fn sio(&self) -> &Sio {
        &self.sio
    }

    fn server_dir(&self, server: &str, owner: &str) -> PathBuf {
        self.root.join("servers").join(server).join(owner)
    }

    /// Splits `input` into `block_size`-byte blocks, signs each for the
    /// listed verifier identities, and writes the wire bundle to `out`.
    ///
    /// Returns the number of blocks produced.
    ///
    /// # Errors
    ///
    /// I/O and usage errors.
    pub fn sign_file(
        &self,
        owner: &str,
        verifiers: &[&str],
        input: &Path,
        out: &Path,
        block_size: usize,
    ) -> Result<usize, CliError> {
        if block_size == 0 {
            return Err(CliError::Usage("block size must be positive".into()));
        }
        let data = fs::read(input).map_err(io_err(input))?;
        let user = self.sio.register(owner);
        let verifier_publics: Vec<_> = verifiers
            .iter()
            .map(|v| seccloud_ibs::VerifierPublic::from_identity(v))
            .collect();
        let refs: Vec<&_> = verifier_publics.iter().collect();
        let blocks: Vec<DataBlock> = data
            .chunks(block_size)
            .enumerate()
            .map(|(i, chunk)| DataBlock::new(i as u64, chunk.to_vec()))
            .collect();
        let signed = user.sign_blocks(&blocks, &refs);
        let mut w = seccloud_core::wire::Writer::new();
        w.put_u64(signed.len() as u64);
        for b in &signed {
            b.encode_body(&mut w);
        }
        fs::write(out, w.finish()).map_err(io_err(out))?;
        Ok(signed.len())
    }

    /// Ingests a signed bundle into a server's store, verifying each block
    /// first (eq. 5). Returns `(accepted, rejected)`.
    ///
    /// # Errors
    ///
    /// I/O and decode failures.
    pub fn store(
        &self,
        server: &str,
        owner: &str,
        bundle: &Path,
    ) -> Result<(usize, usize), CliError> {
        let bytes = fs::read(bundle).map_err(io_err(bundle))?;
        let mut r = seccloud_core::wire::Reader::new(&bytes)
            .map_err(|e| CliError::BadBlock(e.to_string()))?;
        let n = r
            .take_len()
            .map_err(|e| CliError::BadBlock(e.to_string()))?;
        let server_key = self.sio.register_verifier(server);
        let owner_pub = seccloud_ibs::UserPublic::from_identity(owner);
        let dir = self.server_dir(server, owner);
        fs::create_dir_all(&dir).map_err(io_err(&dir))?;
        let (mut accepted, mut rejected) = (0, 0);
        for _ in 0..n {
            let block =
                SignedBlock::decode_body(&mut r).map_err(|e| CliError::BadBlock(e.to_string()))?;
            if block.verify(server_key.key(), &owner_pub) {
                let path = dir.join(format!("{}.blk", block.block().index()));
                fs::write(&path, block.to_wire()).map_err(io_err(&path))?;
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        Ok((accepted, rejected))
    }

    /// Loads every stored block of `(server, owner)` ordered by position.
    ///
    /// # Errors
    ///
    /// I/O and decode failures.
    pub fn load_blocks(&self, server: &str, owner: &str) -> Result<Vec<SignedBlock>, CliError> {
        let dir = self.server_dir(server, owner);
        let mut blocks = Vec::new();
        let entries = fs::read_dir(&dir).map_err(io_err(&dir))?;
        for entry in entries {
            let path = entry.map_err(io_err(&dir))?.path();
            if path.extension().is_some_and(|e| e == "blk") {
                let bytes = fs::read(&path).map_err(io_err(&path))?;
                let block = SignedBlock::from_wire(&bytes)
                    .map_err(|e| CliError::BadBlock(format!("{}: {e}", path.display())))?;
                blocks.push(block);
            }
        }
        blocks.sort_by_key(|b| b.block().index());
        Ok(blocks)
    }

    /// Audits every stored block (storage audit, eq. 5) with the named
    /// verifier identity. Returns `(checked, failed positions)`.
    ///
    /// # Errors
    ///
    /// I/O and decode failures.
    pub fn verify_storage(
        &self,
        server: &str,
        owner: &str,
        verifier: &str,
    ) -> Result<(usize, Vec<u64>), CliError> {
        let blocks = self.load_blocks(server, owner)?;
        let v = self.sio.register_verifier(verifier);
        let owner_pub = seccloud_ibs::UserPublic::from_identity(owner);
        let failed = blocks
            .iter()
            .filter(|b| !b.verify(v.key(), &owner_pub))
            .map(|b| b.block().index())
            .collect();
        Ok((blocks.len(), failed))
    }

    /// Runs a complete computation audit round against the (honest,
    /// CLI-simulated) server: build the request, commit, sample `t`
    /// sub-tasks, respond and verify with Algorithm 1.
    ///
    /// Returns `(checked sub-tasks, audit valid)`.
    ///
    /// # Errors
    ///
    /// Usage errors (no blocks, unknown function) and I/O failures.
    #[allow(clippy::too_many_arguments)]
    pub fn audit_computation(
        &self,
        server: &str,
        owner: &str,
        verifier: &str,
        function: &str,
        group: u64,
        t: usize,
        challenge_seed: &str,
    ) -> Result<(usize, bool), CliError> {
        let function = parse_function(function)?;
        if group == 0 {
            return Err(CliError::Usage("group size must be positive".into()));
        }
        let blocks = self.load_blocks(server, owner)?;
        if blocks.is_empty() {
            return Err(CliError::Usage(format!(
                "no blocks stored for {owner} on {server}"
            )));
        }
        let positions: Vec<u64> = blocks.iter().map(|b| b.block().index()).collect();
        let items: Vec<RequestItem> = positions
            .chunks(group as usize)
            .map(|chunk| RequestItem {
                function: function.clone(),
                positions: chunk.to_vec(),
            })
            .collect();
        let request = ComputationRequest::new(items);

        let server_cred = self.sio.register_verifier(server);
        let da = self.sio.register_verifier(verifier);
        let owner_pub = seccloud_ibs::UserPublic::from_identity(owner);

        let lookup = |pos: u64| blocks.iter().find(|b| b.block().index() == pos);
        let (commitment, session) =
            CommitmentSession::commit(&request, lookup, server_cred.signer(), da.public())
                .map_err(|e| CliError::Usage(e.to_string()))?;

        let mut drbg = HmacDrbg::new(challenge_seed.as_bytes());
        let t = t.min(request.len());
        let challenge = AuditChallenge::sample(&mut drbg, request.len(), t);
        let response = session
            .respond(&challenge)
            .ok_or_else(|| CliError::Usage("challenge out of range".into()))?;
        let outcome = verify_response(
            da.key(),
            &owner_pub,
            server_cred.signer_public(),
            &request,
            &challenge,
            &commitment,
            &response,
        );
        Ok((outcome.checked, outcome.is_valid()))
    }
}

/// Parses a function name into a [`ComputeFunction`].
///
/// # Errors
///
/// [`CliError::Usage`] for unknown names.
pub fn parse_function(name: &str) -> Result<ComputeFunction, CliError> {
    Ok(match name {
        "sum" => ComputeFunction::Sum,
        "avg" | "average" => ComputeFunction::Average,
        "max" => ComputeFunction::Max,
        "min" => ComputeFunction::Min,
        "count" => ComputeFunction::Count,
        "ssd" | "variance" => ComputeFunction::SumSquaredDeviation,
        other => {
            return Err(CliError::Usage(format!(
                "unknown function {other:?} (try sum/avg/max/min/count/ssd)"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("seccloud-cli-test-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).expect("temp dir");
            Self(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn setup_open_round_trip() {
        let tmp = TempDir::new("setup");
        let ws = Workspace::setup(&tmp.0, "seed-1").unwrap();
        let reopened = Workspace::open(&tmp.0).unwrap();
        assert_eq!(ws.sio().params(), reopened.sio().params());
        // Unseeded dir refuses to open.
        let other = TempDir::new("setup-missing");
        assert!(matches!(
            Workspace::open(&other.0),
            Err(CliError::NotInitialized)
        ));
    }

    #[test]
    fn sign_store_audit_end_to_end() {
        let tmp = TempDir::new("e2e");
        let ws = Workspace::setup(&tmp.0, "sys").unwrap();
        // Write a source file.
        let input = tmp.0.join("data.bin");
        fs::write(&input, vec![7u8; 300]).unwrap();
        let bundle = tmp.0.join("blocks.bin");
        let n = ws
            .sign_file("alice", &["cs", "da"], &input, &bundle, 64)
            .unwrap();
        assert_eq!(n, 5); // 300 / 64 → 5 blocks
        let (accepted, rejected) = ws.store("cs", "alice", &bundle).unwrap();
        assert_eq!((accepted, rejected), (5, 0));
        let (checked, failed) = ws.verify_storage("cs", "alice", "da").unwrap();
        assert_eq!(checked, 5);
        assert!(failed.is_empty());
        let (audited, valid) = ws
            .audit_computation("cs", "alice", "da", "sum", 2, 3, "challenge-seed")
            .unwrap();
        assert_eq!(audited, 3);
        assert!(valid);
    }

    #[test]
    fn corrupted_stored_block_is_flagged() {
        let tmp = TempDir::new("corrupt");
        let ws = Workspace::setup(&tmp.0, "sys").unwrap();
        let input = tmp.0.join("data.bin");
        fs::write(&input, vec![1u8; 128]).unwrap();
        let bundle = tmp.0.join("blocks.bin");
        ws.sign_file("alice", &["cs", "da"], &input, &bundle, 32)
            .unwrap();
        ws.store("cs", "alice", &bundle).unwrap();
        // Bit-rot one stored block by rewriting its data portion with a
        // validly-encoded but unsigned replacement.
        let victim = tmp.0.join("servers/cs/alice/2.blk");
        let original = SignedBlock::from_wire(&fs::read(&victim).unwrap()).unwrap();
        let mut tampered = original.clone();
        tampered.tamper_data(vec![0xee; 32]);
        fs::write(&victim, tampered.to_wire()).unwrap();
        let (_, failed) = ws.verify_storage("cs", "alice", "da").unwrap();
        assert_eq!(failed, vec![2]);
    }

    #[test]
    fn blocks_signed_for_other_verifiers_rejected_at_store() {
        let tmp = TempDir::new("foreign");
        let ws = Workspace::setup(&tmp.0, "sys").unwrap();
        let input = tmp.0.join("data.bin");
        fs::write(&input, vec![9u8; 64]).unwrap();
        let bundle = tmp.0.join("blocks.bin");
        ws.sign_file("alice", &["other-server"], &input, &bundle, 32)
            .unwrap();
        let (accepted, rejected) = ws.store("cs", "alice", &bundle).unwrap();
        assert_eq!((accepted, rejected), (0, 2));
    }

    #[test]
    fn function_parsing() {
        assert!(parse_function("sum").is_ok());
        assert!(parse_function("avg").is_ok());
        assert!(parse_function("ssd").is_ok());
        assert!(matches!(parse_function("median"), Err(CliError::Usage(_))));
    }

    #[test]
    fn different_system_seeds_are_incompatible() {
        let tmp_a = TempDir::new("sys-a");
        let tmp_b = TempDir::new("sys-b");
        let ws_a = Workspace::setup(&tmp_a.0, "seed-a").unwrap();
        let ws_b = Workspace::setup(&tmp_b.0, "seed-b").unwrap();
        let input = tmp_a.0.join("data.bin");
        fs::write(&input, vec![5u8; 64]).unwrap();
        let bundle = tmp_a.0.join("blocks.bin");
        ws_a.sign_file("alice", &["cs"], &input, &bundle, 32)
            .unwrap();
        // System B's server rejects system A's signatures.
        let (accepted, rejected) = ws_b.store("cs", "alice", &bundle).unwrap();
        assert_eq!((accepted, rejected), (0, 2));
    }
}
