//! Deterministic test-only randomness (SplitMix64).
//!
//! This crate sits below `seccloud-hash`, so its randomized tests cannot
//! borrow the workspace DRBG; a SplitMix64 stream keeps them dependency-free
//! and reproducible (fixed seed per test = same cases every run).

pub struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-enough value in `0..bound` for test-case generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    pub fn limbs<const N: usize>(&mut self) -> [u64; N] {
        std::array::from_fn(|_| self.next_u64())
    }

    pub fn limb_vec(&mut self, max_len: usize) -> Vec<u64> {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len).map(|_| self.next_u64()).collect()
    }
}
