//! Merkle hash trees (paper Section V-C, eq. 6 and Fig. 3).
//!
//! The cloud server commits to a batch of computation results by building a
//! binary hash tree over leaves `H(yᵢ ‖ pᵢ)` and signing the root `R`. The
//! auditor later checks sampled leaves against `R` using authentication
//! paths ("sibling sets" in the paper's wording).
//!
//! This implementation is generic over the committed byte strings and adds
//! two hardening details the 2010 paper leaves implicit:
//!
//! * **domain separation** between leaf and interior hashes (`0x00`/`0x01`
//!   prefixes), closing the classic second-preimage-by-reinterpretation gap;
//! * **multi-proofs** ([`MerkleTree::prove_multi`]) that share interior
//!   nodes across the `t` sampled leaves of an audit challenge, cutting the
//!   response size versus `t` independent paths.
//!
//! # Examples
//!
//! ```
//! use seccloud_merkle::MerkleTree;
//!
//! let leaves: Vec<Vec<u8>> = (0..8u32).map(|i| i.to_be_bytes().to_vec()).collect();
//! let tree = MerkleTree::from_data(leaves.iter().map(Vec::as_slice));
//! let proof = tree.prove(4).unwrap();
//! assert!(proof.verify(&tree.root(), &leaves[4], 4));
//! assert!(!proof.verify(&tree.root(), &leaves[5], 4));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod multiproof;
#[cfg(test)]
mod proptests;
mod tree;

pub use multiproof::MultiProof;
pub use tree::{leaf_hash, node_hash, MerklePath, MerkleTree, Node};
