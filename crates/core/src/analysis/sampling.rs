//! Uncheatability analysis (paper Section VII-A, eq. 10–15, Fig. 4).

/// Parameters of a (potentially) cheating cloud server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheatParams {
    /// Computing Secure Confidence: fraction of sub-tasks computed honestly
    /// (`CSC = |F'|/|F|`).
    pub csc: f64,
    /// Storage Secure Confidence: fraction of data served from the correct
    /// positions (`SSC = |X'|/|X|`).
    pub ssc: f64,
    /// Size of the function range `R` (`None` ⇒ `R → ∞`, i.e. guessing a
    /// result never succeeds).
    pub range: Option<f64>,
    /// Probability of forging a block signature (`Pr[SigForge]`,
    /// cryptographically negligible; exposed for the analysis plots).
    pub sig_forge: f64,
}

impl CheatParams {
    /// A cheater with the given confidences, unguessable function range and
    /// negligible forgery probability.
    pub fn new(csc: f64, ssc: f64) -> Self {
        Self {
            csc,
            ssc,
            range: None,
            sig_forge: 0.0,
        }
    }

    /// Sets a finite function range `R` (the guessing channel of eq. 10).
    #[must_use]
    pub fn with_range(mut self, r: f64) -> Self {
        self.range = Some(r);
        self
    }

    /// Sets a non-negligible forgery probability (analysis only).
    #[must_use]
    pub fn with_sig_forge(mut self, p: f64) -> Self {
        self.sig_forge = p;
        self
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.csc) && (0.0..=1.0).contains(&self.ssc),
            "confidences must lie in [0, 1]"
        );
        assert!((0.0..=1.0).contains(&self.sig_forge), "probability range");
        if let Some(r) = self.range {
            assert!(r >= 1.0, "function range must be ≥ 1");
        }
    }

    /// The per-sample survival probability of the FCS event,
    /// `CSC + (1−CSC)/R`.
    pub fn fcs_base(&self) -> f64 {
        self.validate();
        let guess = self.range.map_or(0.0, |r| 1.0 / r);
        self.csc + (1.0 - self.csc) * guess
    }

    /// The per-sample survival probability of the PCS event,
    /// `SSC + (1−SSC)·Pr[SigForge]`.
    pub fn pcs_base(&self) -> f64 {
        self.validate();
        self.ssc + (1.0 - self.ssc) * self.sig_forge
    }
}

/// `Pr[FCS]` — the server guesses its way past `t` result checks
/// (paper eq. 10).
pub fn fcs_probability(params: &CheatParams, t: u32) -> f64 {
    params.fcs_base().powi(t as i32)
}

/// `Pr[PCS]` — the server survives `t` position checks with wrong-position
/// data (paper eq. 12).
pub fn pcs_probability(params: &CheatParams, t: u32) -> f64 {
    params.pcs_base().powi(t as i32)
}

/// `Pr[Cheating Successful] = Pr[FCS ∪ PCS] ≤ Pr[FCS] + Pr[PCS]`
/// (paper eq. 14, union bound with independence assumption), clamped to 1.
pub fn cheat_probability(params: &CheatParams, t: u32) -> f64 {
    (fcs_probability(params, t) + pcs_probability(params, t)).min(1.0)
}

/// The smallest sampling size `t` with
/// `Pr[Cheating Successful] < ε` — the quantity plotted in Fig. 4.
///
/// Returns `None` when no finite `t` achieves it (a fully honest-looking
/// server, `CSC = SSC = 1`, can always "cheat successfully" in the formal
/// sense because there is nothing to detect; likewise `ε ≤ 0`).
pub fn required_sample_size(params: &CheatParams, epsilon: f64) -> Option<u32> {
    if epsilon <= 0.0 {
        return None;
    }
    if epsilon > 2.0 {
        return Some(0);
    }
    let a = params.fcs_base();
    let b = params.pcs_base();
    let worst = a.max(b);
    if worst >= 1.0 {
        // Probability never decays below 1.
        return None;
    }
    if worst <= 0.0 {
        return Some(1);
    }
    // Sufficient bound: 2·worstᵗ < ε  ⇒  t > ln(ε/2)/ln(worst). Then walk
    // down to the exact minimum (the bound overshoots by ≤ a few samples).
    let mut t = ((epsilon / 2.0).ln() / worst.ln()).ceil().max(1.0) as u32;
    while t > 1 && cheat_probability(params, t.saturating_sub(1)) < epsilon {
        t = t.saturating_sub(1);
    }
    while cheat_probability(params, t) >= epsilon {
        t = t.saturating_add(1);
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-4;

    #[test]
    fn paper_anchor_r2_half_half_needs_33_samples() {
        // Paper: "half CSC and half SSC of the task, the range of the domain
        // is R = 2, we need at least 33 samples … below ε = 0.0001".
        let p = CheatParams::new(0.5, 0.5).with_range(2.0);
        assert_eq!(required_sample_size(&p, EPS), Some(33));
    }

    #[test]
    fn paper_anchor_unbounded_range_needs_15_samples() {
        // Paper: "When R is large enough … we only need 15 samples."
        let p = CheatParams::new(0.5, 0.5);
        assert_eq!(required_sample_size(&p, EPS), Some(15));
    }

    #[test]
    fn minimality_of_the_returned_t() {
        for (csc, ssc, r) in [
            (0.5, 0.5, Some(2.0)),
            (0.9, 0.3, None),
            (0.0, 0.0, Some(10.0)),
            (0.7, 0.95, Some(2.0)),
        ] {
            let mut p = CheatParams::new(csc, ssc);
            if let Some(r) = r {
                p = p.with_range(r);
            }
            let t = required_sample_size(&p, EPS).unwrap();
            assert!(cheat_probability(&p, t) < EPS);
            if t > 0 {
                assert!(cheat_probability(&p, t - 1) >= EPS, "t not minimal");
            }
        }
    }

    #[test]
    fn probability_is_monotone_in_t_and_confidences() {
        let p = CheatParams::new(0.6, 0.4).with_range(4.0);
        let probs: Vec<f64> = (1..40).map(|t| cheat_probability(&p, t)).collect();
        assert!(probs.windows(2).all(|w| w[1] <= w[0]), "decreasing in t");

        // Higher confidence (more honest work) ⇒ easier to cheat on the
        // remainder ⇒ probability increases.
        let low = cheat_probability(&CheatParams::new(0.2, 0.2), 10);
        let high = cheat_probability(&CheatParams::new(0.8, 0.8), 10);
        assert!(high > low);
    }

    #[test]
    fn degenerate_cases() {
        // Fully honest server: no finite t "catches" it.
        assert_eq!(required_sample_size(&CheatParams::new(1.0, 1.0), EPS), None);
        // CSC = 1 alone is already undetectable via FCS.
        assert_eq!(required_sample_size(&CheatParams::new(1.0, 0.0), EPS), None);
        // Fully dishonest with unguessable range: one sample catches both
        // channels with probability 1, but the definition needs the sum
        // under ε, which a single sample achieves (0 + 0 < ε).
        assert_eq!(
            required_sample_size(&CheatParams::new(0.0, 0.0), EPS),
            Some(1)
        );
        // Nonpositive epsilon is unsatisfiable.
        assert_eq!(required_sample_size(&CheatParams::new(0.5, 0.5), 0.0), None);
    }

    #[test]
    fn forgery_probability_feeds_pcs() {
        let p = CheatParams::new(0.5, 0.0).with_sig_forge(0.5);
        // PCS base = 0 + 1·0.5 = 0.5
        assert!((p.pcs_base() - 0.5).abs() < 1e-12);
        let p2 = CheatParams::new(0.5, 0.0);
        assert_eq!(p2.pcs_base(), 0.0);
    }

    #[test]
    fn fcs_base_matches_formula() {
        let p = CheatParams::new(0.25, 0.0).with_range(4.0);
        // 0.25 + 0.75/4 = 0.4375
        assert!((p.fcs_base() - 0.4375).abs() < 1e-12);
        assert!((fcs_probability(&p, 2) - 0.4375f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "confidences must lie in [0, 1]")]
    fn out_of_range_confidence_panics() {
        let _ = CheatParams::new(1.5, 0.0).fcs_base();
    }

    #[test]
    fn probability_clamped_at_one() {
        let p = CheatParams::new(1.0, 1.0);
        assert_eq!(cheat_probability(&p, 100), 1.0);
    }
}
