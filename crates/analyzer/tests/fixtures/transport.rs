//! Bad fixture for the `transport` rule: raw wire channels named outside
//! the defining/wrapping crates (cloudsim/resilience/testkit/net).
//! Never compiled — lexed by the analyzer self-tests only.

pub fn audit_over_raw_channel<T: WireTransport>(transport: &mut T) -> bool {
    let server = WireServer::attach(transport);
    server.ping()
}
