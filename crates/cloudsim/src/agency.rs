//! The Designated Agency — the auditor acting on behalf of cloud users
//! (paper Sections III-B and V-D).

use seccloud_core::computation::{
    verify_response, verify_response_parallel, AuditChallenge, AuditOutcome, AuditResponse,
    Commitment, ComputationRequest,
};
use seccloud_core::storage::SignedBlock;
use seccloud_core::warrant::Warrant;
use seccloud_core::wire::WireMessage;
use seccloud_core::{CloudUser, Sio, VerifierCredential};
use seccloud_hash::HmacDrbg;
use seccloud_ibs::VerifierPublic;

use crate::rpc::{RpcError, WireTransport};
use crate::server::{CloudServer, JobHandle, ServerError};

/// The result of one delegated audit round.
#[must_use = "an unexamined verdict silently drops detected cheating"]
#[derive(Clone, Debug)]
pub struct AuditVerdict {
    /// The challenge that was issued.
    pub challenge: AuditChallenge,
    /// Algorithm 1's detailed outcome.
    pub outcome: AuditOutcome,
    /// Whether cheating was detected (`retValue = invalid`).
    pub detected: bool,
}

/// The result of one sampled storage audit.
#[must_use = "an unexamined verdict silently drops detected data loss"]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageAuditVerdict {
    /// The positions that were challenged.
    pub sampled: Vec<u64>,
    /// Challenged positions the server could not produce (deletion).
    pub missing: Vec<u64>,
    /// Challenged positions whose block failed authentication
    /// (corruption or wrong-position relabelling).
    pub invalid: Vec<u64>,
}

impl StorageAuditVerdict {
    /// Whether every sampled block was present and authentic.
    pub fn is_healthy(&self) -> bool {
        self.missing.is_empty() && self.invalid.is_empty()
    }
}

/// The designated agency: holds its verifier credential and a DRBG for
/// challenge sampling, and drives the full audit protocol against servers.
///
/// "DA is expected to have enough computational and storage capability to
/// perform the auditing operations" (paper Section III-B).
pub struct DesignatedAgency {
    cred: VerifierCredential,
    drbg: HmacDrbg,
}

impl std::fmt::Debug for DesignatedAgency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignatedAgency")
            .field("identity", &self.identity())
            .finish()
    }
}

impl DesignatedAgency {
    /// Registers the agency with the SIO.
    pub fn new(sio: &Sio, identity: &str, seed: &[u8]) -> Self {
        Self {
            cred: sio.register_verifier(identity),
            drbg: HmacDrbg::new(seed),
        }
    }

    /// The agency's identity.
    pub fn identity(&self) -> &str {
        self.cred.identity()
    }

    /// The public verification identity users designate signatures to.
    pub fn public(&self) -> &VerifierPublic {
        self.cred.public()
    }

    /// The credential (for direct protocol calls in tests/benches).
    pub fn credential(&self) -> &VerifierCredential {
        &self.cred
    }

    /// Draws a fresh sampling challenge from the agency's DRBG.
    pub fn sample_challenge(&mut self, n: usize, t: usize) -> AuditChallenge {
        AuditChallenge::sample(&mut self.drbg, n, t)
    }

    /// Sampled **storage** audit (Protocol II with probabilistic sampling):
    /// draws `t` of the owner's `n` block positions, retrieves each from
    /// the server and verifies its designated signature (eq. 5).
    ///
    /// Per the paper's SSC analysis, a server keeping only an `SSC`
    /// fraction of the data intact escapes with probability `SSC^t`
    /// (eq. 12 with negligible forgery).
    /// The per-position retrieve-and-verify checks (one pairing each) fan
    /// out over [`seccloud_parallel::num_threads`] workers; sampling stays
    /// serial so the challenge stream depends only on the agency's DRBG.
    pub fn storage_audit(
        &mut self,
        server: &CloudServer,
        owner: &CloudUser,
        n_blocks: u64,
        sample_size: usize,
    ) -> StorageAuditVerdict {
        let t = (sample_size as u64).min(n_blocks);
        let positions = self.drbg.sample_distinct(n_blocks, t);
        /// Per-position verdict, ordered like the sampled positions.
        enum Verdict {
            Ok,
            Missing,
            Invalid,
        }
        let verdicts = seccloud_parallel::parallel_map(&positions, |_, &pos| {
            match server.retrieve(owner.identity(), pos) {
                None => Verdict::Missing,
                Some(block) => {
                    if block.block().index() != pos
                        || !block.verify(self.cred.key(), owner.public())
                    {
                        Verdict::Invalid
                    } else {
                        Verdict::Ok
                    }
                }
            }
        });
        let mut missing = Vec::new();
        let mut invalid = Vec::new();
        for (&pos, verdict) in positions.iter().zip(&verdicts) {
            match verdict {
                Verdict::Missing => missing.push(pos),
                Verdict::Invalid => invalid.push(pos),
                Verdict::Ok => {}
            }
        }
        StorageAuditVerdict {
            sampled: positions,
            missing,
            invalid,
        }
    }

    /// Runs one full delegated audit round against `server` for the job in
    /// `handle`:
    ///
    /// 1. the owner issues a warrant delegating to this agency,
    /// 2. the agency samples `t` sub-tasks and challenges the server,
    /// 3. the server validates the warrant and responds,
    /// 4. the agency runs Algorithm 1 on the response.
    ///
    /// # Errors
    ///
    /// Propagates server-side rejections (bad warrant, unknown job).
    pub fn audit(
        &mut self,
        server: &CloudServer,
        handle: &JobHandle,
        owner: &CloudUser,
        sample_size: usize,
        now: u64,
    ) -> Result<AuditVerdict, ServerError> {
        let warrant = Warrant::issue(
            owner,
            self.identity(),
            now + 1_000,
            handle.request.digest(),
            &[server.public(), self.cred.public()],
        );
        self.audit_with_warrant(server, handle, owner, &warrant, sample_size, now)
    }

    /// Like [`DesignatedAgency::audit`] but with a caller-supplied warrant
    /// (to exercise expiry and delegation failures).
    pub fn audit_with_warrant(
        &mut self,
        server: &CloudServer,
        handle: &JobHandle,
        owner: &CloudUser,
        warrant: &Warrant,
        sample_size: usize,
        now: u64,
    ) -> Result<AuditVerdict, ServerError> {
        let n = handle.request.len();
        let t = sample_size.min(n);
        let challenge = AuditChallenge::sample(&mut self.drbg, n, t);
        let response = server.handle_audit(
            handle.job_id,
            &challenge,
            warrant,
            owner.public(),
            self.identity(),
            now,
        )?;
        let outcome = verify_response_parallel(
            self.cred.key(),
            owner.public(),
            server.signer_public(),
            &handle.request,
            &challenge,
            &handle.commitment,
            &response,
        );
        let detected = !outcome.is_valid();
        Ok(AuditVerdict {
            challenge,
            outcome,
            detected,
        })
    }

    /// Runs one full delegated audit **over a byte-level transport**: the
    /// commitment, warrant, challenge and response all cross the channel in
    /// serialized form, so any byte-level fault surfaces here as a typed
    /// error or a `detected` verdict — never a panic, never a false pass.
    ///
    /// The expected server identities come from
    /// [`WireTransport::peer_verifier`] / [`WireTransport::peer_signer`]
    /// (PKI-anchored), so a fault-injecting channel cannot substitute its
    /// own keys.
    ///
    /// # Errors
    ///
    /// Decode failures ([`RpcError::Malformed`]) and server rejections
    /// ([`RpcError::Server`]).
    #[allow(clippy::too_many_arguments)] // mirrors the wire exchange one-to-one
    pub fn audit_wire(
        &mut self,
        transport: &mut impl WireTransport,
        owner: &CloudUser,
        request: &ComputationRequest,
        job_id: u64,
        commitment_bytes: &[u8],
        sample_size: usize,
        now: u64,
    ) -> Result<AuditVerdict, RpcError> {
        let commitment = Commitment::from_wire(commitment_bytes)?;
        let n = request.len();
        let challenge = self.sample_challenge(n, sample_size.min(n));
        let peer_verifier = transport.peer_verifier();
        let warrant = Warrant::issue(
            owner,
            self.identity(),
            now + 1_000,
            request.digest(),
            &[&peer_verifier, self.cred.public()],
        );
        let response_bytes = transport.rpc_audit(
            owner.identity(),
            self.identity(),
            job_id,
            &challenge.to_wire(),
            &warrant.to_wire(),
            now,
        )?;
        let response = AuditResponse::from_wire(&response_bytes)?;
        let outcome = verify_response(
            self.cred.key(),
            owner.public(),
            &transport.peer_signer(),
            request,
            &challenge,
            &commitment,
            &response,
        );
        let detected = !outcome.is_valid();
        Ok(AuditVerdict {
            challenge,
            outcome,
            detected,
        })
    }

    /// Sampled storage audit **over a byte-level transport**: retrieves each
    /// challenged block as bytes and re-establishes authenticity from
    /// scratch — a position is `missing` if the channel returns nothing and
    /// `invalid` if the bytes fail to decode, carry the wrong index, or
    /// fail signature verification. A faulty channel can therefore only
    /// push the verdict toward unhealthy, never toward a false pass.
    pub fn storage_audit_wire(
        &mut self,
        transport: &mut impl WireTransport,
        owner: &CloudUser,
        n_blocks: u64,
        sample_size: usize,
    ) -> StorageAuditVerdict {
        let t = (sample_size as u64).min(n_blocks);
        let positions = self.drbg.sample_distinct(n_blocks, t);
        let mut missing = Vec::new();
        let mut invalid = Vec::new();
        for &pos in &positions {
            match transport.rpc_retrieve(owner.identity(), pos) {
                None => missing.push(pos),
                Some(bytes) => match SignedBlock::from_wire(&bytes) {
                    Err(_) => invalid.push(pos),
                    Ok(block) => {
                        if block.block().index() != pos
                            || !block.verify(self.cred.key(), owner.public())
                        {
                            invalid.push(pos);
                        }
                    }
                },
            }
        }
        StorageAuditVerdict {
            sampled: positions,
            missing,
            invalid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use seccloud_core::computation::{ComputationRequest, ComputeFunction, RequestItem};
    use seccloud_core::storage::DataBlock;
    use seccloud_core::warrant::WarrantError;

    fn world(behavior: Behavior) -> (Sio, CloudUser, CloudServer, DesignatedAgency, JobHandle) {
        let sio = Sio::new(b"agency-tests");
        let user = sio.register("alice");
        let mut server = CloudServer::new(&sio, "cs-01", behavior, b"srv");
        let da = DesignatedAgency::new(&sio, "da", b"agency");
        let blocks: Vec<DataBlock> = (0..16)
            .map(|i| DataBlock::from_values(i, &[i * 3, i * 3 + 1]))
            .collect();
        let signed = user.sign_blocks(&blocks, &[server.public(), da.public()]);
        server.store(&user, signed);
        let request = ComputationRequest::new(
            (0..8u64)
                .map(|i| RequestItem {
                    function: ComputeFunction::Sum,
                    positions: vec![2 * i, 2 * i + 1],
                })
                .collect(),
        );
        let handle = server
            .handle_computation(&"alice".to_string(), &request, da.public())
            .unwrap();
        (sio, user, server, da, handle)
    }

    #[test]
    fn honest_server_passes_audit() {
        let (_, user, server, mut da, handle) = world(Behavior::Honest);
        let verdict = da.audit(&server, &handle, &user, 4, 0).unwrap();
        assert!(!verdict.detected, "{verdict:?}");
        assert_eq!(verdict.challenge.len(), 4);
        assert!(verdict.outcome.root_sig_ok);
    }

    #[test]
    fn always_lying_server_is_always_caught() {
        let (_, user, server, mut da, handle) = world(Behavior::ComputationCheater {
            csc: 0.0,
            guess_range: None,
        });
        let verdict = da.audit(&server, &handle, &user, 1, 0).unwrap();
        assert!(verdict.detected, "one sample suffices against CSC=0, R=∞");
    }

    #[test]
    fn partial_cheater_detection_is_probabilistic() {
        // CSC = 0.5 over 8 items: a 1-sample audit sometimes misses,
        // a full-challenge audit always detects (with overwhelming prob).
        let (_, user, server, mut da, handle) = world(Behavior::ComputationCheater {
            csc: 0.5,
            guess_range: None,
        });
        let full = da.audit(&server, &handle, &user, 8, 0).unwrap();
        assert!(full.detected, "full audit of a 50% cheater");
        // The number of failing items should be near half.
        let fails = full.outcome.failures.len();
        assert!((1..8).contains(&fails), "got {fails} failures");
    }

    #[test]
    fn expired_warrant_is_rejected_by_the_server() {
        let (_, user, server, mut da, handle) = world(Behavior::Honest);
        let warrant = Warrant::issue(
            &user,
            da.identity(),
            10, // expires at t=10
            handle.request.digest(),
            &[server.public(), da.public()],
        );
        let err = da
            .audit_with_warrant(&server, &handle, &user, &warrant, 2, 50)
            .unwrap_err();
        assert_eq!(err, ServerError::Warrant(WarrantError::Expired));
        // And the same warrant works before expiry.
        assert!(da
            .audit_with_warrant(&server, &handle, &user, &warrant, 2, 5)
            .is_ok());
    }

    #[test]
    fn warrant_bound_to_other_request_is_rejected() {
        let (_, user, server, mut da, handle) = world(Behavior::Honest);
        let warrant = Warrant::issue(
            &user,
            da.identity(),
            1_000,
            [9u8; 32],
            &[server.public(), da.public()],
        );
        let err = da
            .audit_with_warrant(&server, &handle, &user, &warrant, 2, 0)
            .unwrap_err();
        assert_eq!(err, ServerError::Warrant(WarrantError::WrongRequest));
    }

    #[test]
    fn storage_audit_passes_honest_server() {
        let (_, user, server, mut da, _) = world(Behavior::Honest);
        let verdict = da.storage_audit(&server, &user, 16, 8);
        assert_eq!(verdict.sampled.len(), 8);
        assert!(verdict.is_healthy(), "{verdict:?}");
    }

    #[test]
    fn storage_audit_catches_deleting_and_corrupting_servers() {
        use crate::behavior::StorageAttack;
        for attack in [
            StorageAttack::Delete,
            StorageAttack::Corrupt,
            StorageAttack::WrongPosition,
        ] {
            let sio = Sio::new(b"storage-audit-cheat");
            let user = sio.register("alice");
            let mut server = CloudServer::new(
                &sio,
                "cs",
                Behavior::StorageCheater { ssc: 0.0, attack },
                b"s",
            );
            let mut da = DesignatedAgency::new(&sio, "da", b"a");
            let blocks: Vec<DataBlock> = (0..16).map(|i| DataBlock::from_values(i, &[i])).collect();
            server.store(
                &user,
                user.sign_blocks(&blocks, &[server.public(), da.public()]),
            );
            let verdict = da.storage_audit(&server, &user, 16, 16);
            assert!(!verdict.is_healthy(), "attack {attack:?} must be caught");
            match attack {
                StorageAttack::Delete => assert_eq!(verdict.missing.len(), 16),
                StorageAttack::Corrupt => assert_eq!(verdict.invalid.len(), 16),
                // WrongPosition shifts every block by one slot: position 0
                // becomes missing, the shifted ones fail authentication.
                StorageAttack::WrongPosition => {
                    assert!(!verdict.missing.is_empty() || !verdict.invalid.is_empty());
                }
            }
        }
    }

    #[test]
    fn storage_audit_escape_rate_tracks_ssc_formula() {
        // SSC = 0.5 deleter audited with t = 4: escape prob 0.5⁴ ≈ 6%.
        // Sign once; per trial only the server's deletion dice and the
        // DA's sampling vary (ingest re-verification is skipped by reusing
        // the same upload set — deletions happen at ingest).
        let sio = Sio::new(b"ssc-rate");
        let user = sio.register("alice");
        let mut da = DesignatedAgency::new(&sio, "da", b"ssc-da");
        let proto_server = CloudServer::new(&sio, "cs", Behavior::Honest, b"proto");
        let blocks: Vec<DataBlock> = (0..16).map(|i| DataBlock::from_values(i, &[i])).collect();
        let signed = user.sign_blocks(&blocks, &[proto_server.public(), da.public()]);

        let mut escapes = 0;
        let trials = 24;
        for trial in 0u32..trials {
            let mut server = CloudServer::new(
                &sio,
                "cs",
                Behavior::StorageCheater {
                    ssc: 0.5,
                    attack: crate::behavior::StorageAttack::Delete,
                },
                &trial.to_be_bytes(),
            );
            server.store(&user, signed.clone());
            if da.storage_audit(&server, &user, 16, 4).is_healthy() {
                escapes += 1;
            }
        }
        let rate = f64::from(escapes) / f64::from(trials);
        assert!(rate < 0.35, "escape rate {rate} should be near 0.5⁴ ≈ 0.06");
    }

    #[test]
    fn sample_size_is_clamped_to_request_len() {
        let (_, user, server, mut da, handle) = world(Behavior::Honest);
        let verdict = da.audit(&server, &handle, &user, 100, 0).unwrap();
        assert_eq!(verdict.challenge.len(), 8);
        assert!(!verdict.detected);
    }
}
