//! Shard commitment records and their total byte codec.

/// Magic prefix of a serialized shard commitment (`SecCloud Shard
/// Commitment, v1`).
const MAGIC: [u8; 4] = *b"SCS1";

/// Serialized length: magic ‖ shard:u32 ‖ epoch:u64 ‖ root:32.
const WIRE_LEN: usize = 4 + 4 + 8 + 32;

/// A shard's published set commitment: the Merkle root over its member
/// records, bound to the shard index and the epoch it was built in.
///
/// The epoch binding is what makes replaying last epoch's (perfectly
/// valid, correctly rooted) commitment detectable: after a rotation the
/// member set *and* the epoch field both change, and
/// [`UserRegistry::check_commitment`](crate::UserRegistry::check_commitment)
/// rejects a stale epoch before even comparing roots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCommitment {
    /// The shard this commitment covers.
    pub shard: u32,
    /// The epoch the member set was committed in.
    pub epoch: u64,
    /// Merkle root over the shard's sorted member records.
    pub root: [u8; 32],
}

impl ShardCommitment {
    /// Serializes to the fixed 48-byte wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(WIRE_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.shard.to_be_bytes());
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&self.root);
        out
    }

    /// Total decode of the wire form: any length or magic mismatch is
    /// `None`, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != WIRE_LEN || bytes.get(..4)? != MAGIC {
            return None;
        }
        let take4 = |at: usize| -> Option<[u8; 4]> { bytes.get(at..at + 4)?.try_into().ok() };
        let take8 = |at: usize| -> Option<[u8; 8]> { bytes.get(at..at + 8)?.try_into().ok() };
        let root: [u8; 32] = bytes.get(16..48)?.try_into().ok()?;
        Some(Self {
            shard: u32::from_be_bytes(take4(4)?),
            epoch: u64::from_be_bytes(take8(8)?),
            root,
        })
    }
}

/// The per-shard verdict of checking a presented commitment against the
/// registry's own view (see
/// [`UserRegistry::check_commitment`](crate::UserRegistry::check_commitment)).
#[must_use = "an unexamined commitment verdict silently drops a detected fault"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitmentCheck {
    /// Shard, epoch and root all match the registry's view.
    Valid,
    /// The bytes do not decode as a shard commitment.
    Malformed,
    /// The commitment names a different shard than the one it was
    /// presented for (a cross-shard swap).
    WrongShard {
        /// The shard the commitment actually names.
        presented: u32,
    },
    /// The commitment was presented for a shard index the registry does
    /// not have at all — a caller-side routing fault, not a swap between
    /// two real shards.
    UnknownShard {
        /// The nonexistent shard the check was asked about.
        shard: u32,
    },
    /// The commitment is from an earlier (or later) epoch than the
    /// registry's current one (a stale replay).
    WrongEpoch {
        /// The epoch the commitment actually names.
        presented: u64,
    },
    /// Shard and epoch match but the root differs: the member set itself
    /// was tampered with.
    WrongRoot,
}

impl CommitmentCheck {
    /// Whether the presented commitment matched.
    pub fn is_valid(&self) -> bool {
        matches!(self, CommitmentCheck::Valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardCommitment {
        ShardCommitment {
            shard: 5,
            epoch: 9,
            root: [0xAB; 32],
        }
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        assert_eq!(ShardCommitment::from_bytes(&c.to_bytes()), Some(c));
    }

    #[test]
    fn decode_is_total() {
        let good = sample().to_bytes();
        assert!(ShardCommitment::from_bytes(&[]).is_none());
        assert!(ShardCommitment::from_bytes(&good[..47]).is_none());
        let mut long = good.clone();
        long.push(0);
        assert!(ShardCommitment::from_bytes(&long).is_none());
        let mut bad_magic = good;
        bad_magic[0] ^= 0xFF;
        assert!(ShardCommitment::from_bytes(&bad_magic).is_none());
    }
}
