//! Benches for the Table-II comparator schemes: RSA, ECDSA and BGLS
//! signing/verification (the SecCloud rows live in `batch_verify.rs`).

use seccloud_baselines::bgls::{aggregate, verify_aggregate, BlsKeyPair, BlsPublicKey};
use seccloud_baselines::ecdsa::EcdsaKeyPair;
use seccloud_baselines::rsa::RsaKeyPair;
use seccloud_bench::Bench;

fn bench_rsa() {
    let mut g = Bench::group("rsa_1024");
    let key = RsaKeyPair::generate(512, b"bench-rsa");
    let sig = key.sign(b"message");
    g.bench("sign", || key.sign(b"message"));
    g.bench("verify", || assert!(key.public().verify(b"message", &sig)));
}

fn bench_ecdsa() {
    let mut g = Bench::group("ecdsa_bn254");
    let key = EcdsaKeyPair::generate(b"bench-ecdsa");
    let sig = key.sign(b"message");
    g.bench("sign", || key.sign(b"message"));
    g.bench("verify", || assert!(key.public().verify(b"message", &sig)));
}

fn bench_bgls() {
    let mut g = Bench::group("bgls");
    let key = BlsKeyPair::generate(b"bench-bls");
    let sig = key.sign(b"message");
    g.bench("sign", || key.sign(b"message"));
    g.bench("verify", || assert!(key.public().verify(b"message", &sig)));

    // Aggregate of 8 distinct-message signatures: (n+1) pairings.
    let keys: Vec<BlsKeyPair> = (0..8)
        .map(|i| BlsKeyPair::generate(format!("agg-{i}").as_bytes()))
        .collect();
    let msgs: Vec<Vec<u8>> = (0..8u32).map(|i| format!("m{i}").into_bytes()).collect();
    let sigs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
    let agg = aggregate(&sigs);
    let pairs: Vec<(&BlsPublicKey, &[u8])> = keys
        .iter()
        .zip(&msgs)
        .map(|(k, m)| (k.public(), m.as_slice()))
        .collect();
    g.bench("verify_aggregate_8", || {
        assert!(verify_aggregate(&pairs, &agg))
    });
}

fn main() {
    bench_rsa();
    bench_ecdsa();
    bench_bgls();
}
