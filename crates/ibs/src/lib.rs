//! Identity-based designated-verifier signatures with batch verification —
//! the cryptographic heart of SecCloud (paper Sections V-A, V-B and VI).
//!
//! ## Scheme
//!
//! * **Setup** (paper eq. 4): the SIO holds a master secret `s` and issues
//!   `sk_ID = s·H1(ID)`. User identities hash into `G1`; verifier identities
//!   (cloud servers, the designated agency) hash into `G2` — the Type-3 port
//!   of the paper's symmetric-pairing scheme (see `DESIGN.md`).
//! * **Sign** (Section V-B-1): for block `m`, pick `r`, set `U = r·Q_ID`,
//!   `h = H2(U ‖ m)`, `V = (r + h)·sk_ID`.
//! * **Designate**: transform `(U, V)` into `Σ = ê(V, Q_CS)` so that *only*
//!   the party holding `sk_CS = s·Q_CS` can verify
//!   `Σ = ê(U + h·Q_ID, sk_CS)` (eq. 5/7). This is what discourages
//!   privacy-cheating: a leaked `Σ` convinces nobody else, and the verifier
//!   can even [`simulate`] indistinguishable signatures itself.
//! * **Batch verify** (Section VI, eq. 8–9): `ℓ` designated signatures from
//!   any mix of users collapse into a single pairing check
//!   `ê(Σᵢⱼ (Uᵢⱼ + hᵢⱼ·Q_IDᵢ), sk_CS) = Πᵢⱼ Σᵢⱼ`.
//!
//! # Examples
//!
//! ```
//! use seccloud_ibs::{MasterKey, designate, sign};
//!
//! let sio = MasterKey::from_seed(b"doc-example");
//! let alice = sio.extract_user("alice");
//! let server = sio.extract_verifier("cs-01");
//!
//! let sig = sign(&alice, b"data block", b"nonce-1");
//! let designated = designate(&sig, &server.public());
//! assert!(designated.verify(&server, &alice.public(), b"data block"));
//! assert!(!designated.verify(&server, &alice.public(), b"tampered"));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod keys;
mod sign;

pub use batch::{verify_individually, verify_individually_parallel, BatchItem, BatchVerifier};
pub use keys::{MasterKey, SystemParams, UserKey, UserPublic, VerifierKey, VerifierPublic};
pub use sign::{designate, sign, sign_with_rng, simulate, DesignatedSignature, IbsSignature};
