//! The sextic-tower middle layer `Fp6 = Fp2[v]/(v³ − ξ)`.

use crate::fp2::Fp2;
use crate::traits::FieldElement;

/// An element `c0 + c1·v + c2·v²` of `Fp6`, where `v³ = ξ = 9 + u`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Fp6 {
    /// Coefficient of 1.
    pub c0: Fp2,
    /// Coefficient of `v`.
    pub c1: Fp2,
    /// Coefficient of `v²`.
    pub c2: Fp2,
}

impl Fp6 {
    /// Creates `c0 + c1·v + c2·v²`.
    pub const fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Self {
        Self { c0, c1, c2 }
    }

    /// Embeds an `Fp2` element.
    pub fn from_fp2(v: Fp2) -> Self {
        Self::new(v, Fp2::zero(), Fp2::zero())
    }

    /// Multiplies by `v`: `(c0 + c1·v + c2·v²)·v = ξ·c2 + c0·v + c1·v²`.
    pub fn mul_by_v(&self) -> Self {
        Self::new(self.c2.mul_by_xi(), self.c0, self.c1)
    }

    /// Multiplies by an `Fp2` scalar.
    pub fn scale(&self, k: &Fp2) -> Self {
        Self::new(self.c0.mul(k), self.c1.mul(k), self.c2.mul(k))
    }

    /// Sparse product with `b0 + b1·v` (5 `Fp2` muls instead of 6); the
    /// workhorse of the Miller-loop line multiplication.
    pub fn mul_by_01(&self, b0: &Fp2, b1: &Fp2) -> Self {
        let t0 = self.c0.mul(b0);
        let t1 = self.c1.mul(b1);
        // c0 = a0b0 + ξ·a2b1, c1 = a0b1 + a1b0, c2 = a2b0 + a1b1.
        let c0 = t0.add(&self.c2.mul(b1).mul_by_xi());
        let c1 = self.c0.add(&self.c1).mul(&b0.add(b1)).sub(&t0).sub(&t1);
        let c2 = self.c2.mul(b0).add(&t1);
        Self::new(c0, c1, c2)
    }
}

impl FieldElement for Fp6 {
    fn zero() -> Self {
        Self::new(Fp2::zero(), Fp2::zero(), Fp2::zero())
    }

    fn one() -> Self {
        Self::new(Fp2::one(), Fp2::zero(), Fp2::zero())
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    fn add(&self, rhs: &Self) -> Self {
        Self::new(
            self.c0.add(&rhs.c0),
            self.c1.add(&rhs.c1),
            self.c2.add(&rhs.c2),
        )
    }

    fn sub(&self, rhs: &Self) -> Self {
        Self::new(
            self.c0.sub(&rhs.c0),
            self.c1.sub(&rhs.c1),
            self.c2.sub(&rhs.c2),
        )
    }

    fn neg(&self) -> Self {
        Self::new(self.c0.neg(), self.c1.neg(), self.c2.neg())
    }

    fn mul(&self, rhs: &Self) -> Self {
        // Toom–Cook/Karatsuba for the cubic extension: 6 Fp2 muls instead
        // of the 9-mul schoolbook, with v³ = ξ folded in.
        let v0 = self.c0.mul(&rhs.c0);
        let v1 = self.c1.mul(&rhs.c1);
        let v2 = self.c2.mul(&rhs.c2);
        // a1b2 + a2b1 = (a1+a2)(b1+b2) − v1 − v2, etc.
        let t12 = self
            .c1
            .add(&self.c2)
            .mul(&rhs.c1.add(&rhs.c2))
            .sub(&v1)
            .sub(&v2);
        let t01 = self
            .c0
            .add(&self.c1)
            .mul(&rhs.c0.add(&rhs.c1))
            .sub(&v0)
            .sub(&v1);
        let t02 = self
            .c0
            .add(&self.c2)
            .mul(&rhs.c0.add(&rhs.c2))
            .sub(&v0)
            .sub(&v2);
        Self::new(
            v0.add(&t12.mul_by_xi()),
            t01.add(&v2.mul_by_xi()),
            t02.add(&v1),
        )
    }

    fn square(&self) -> Self {
        // CH-SQR2 (Chung–Hasan): 2 muls + 3 squares.
        let s0 = self.c0.square();
        let s1 = self.c0.mul(&self.c1).double();
        let s2 = self.c0.sub(&self.c1).add(&self.c2).square();
        let s3 = self.c1.mul(&self.c2).double();
        let s4 = self.c2.square();
        Self::new(
            s0.add(&s3.mul_by_xi()),
            s1.add(&s4.mul_by_xi()),
            s1.add(&s2).add(&s3).sub(&s0).sub(&s4),
        )
    }

    fn inverse(&self) -> Option<Self> {
        // Standard cubic-extension inversion:
        //   d0 = c0² − ξ·c1·c2
        //   d1 = ξ·c2² − c0·c1
        //   d2 = c1² − c0·c2
        //   t  = c0·d0 + ξ·(c2·d1 + c1·d2)
        //   inv = (d0, d1, d2) / t
        let d0 = self.c0.square().sub(&self.c1.mul(&self.c2).mul_by_xi());
        let d1 = self.c2.square().mul_by_xi().sub(&self.c0.mul(&self.c1));
        let d2 = self.c1.square().sub(&self.c0.mul(&self.c2));
        let t = self
            .c0
            .mul(&d0)
            .add(&self.c2.mul(&d1).add(&self.c1.mul(&d2)).mul_by_xi());
        let t_inv = t.inverse()?;
        Some(Self::new(d0.mul(&t_inv), d1.mul(&t_inv), d2.mul(&t_inv)))
    }

    fn ct_select(a: &Self, b: &Self, choice: u64) -> Self {
        Self::new(
            Fp2::ct_select(&a.c0, &b.c0, choice),
            Fp2::ct_select(&a.c1, &b.c1, choice),
            Fp2::ct_select(&a.c2, &b.c2, choice),
        )
    }

    fn ct_is_zero(&self) -> u64 {
        self.c0.ct_is_zero() & self.c1.ct_is_zero() & self.c2.ct_is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp;
    use seccloud_bigint::U256;
    use seccloud_hash::HmacDrbg;

    fn fp2_s(d: &mut HmacDrbg) -> Fp2 {
        let mut fp = || Fp::from_u256(&U256::from_limbs(std::array::from_fn(|_| d.next_u64())));
        Fp2::new(fp(), fp())
    }

    fn fp6(d: &mut HmacDrbg) -> Fp6 {
        Fp6::new(fp2_s(d), fp2_s(d), fp2_s(d))
    }

    #[test]
    fn v_cubed_is_xi() {
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        let v3 = v.mul(&v).mul(&v);
        assert_eq!(v3, Fp6::from_fp2(Fp2::xi()));
        // And mul_by_v agrees with multiplication by v.
        let a = Fp6::new(Fp2::xi(), Fp2::one(), Fp2::from_u64(7));
        assert_eq!(a.mul_by_v(), a.mul(&v));
    }

    #[test]
    fn ring_axioms() {
        let mut d = HmacDrbg::new(b"fp6-axioms");
        for _ in 0..24 {
            let (a, b, c) = (fp6(&mut d), fp6(&mut d), fp6(&mut d));
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b.mul(&c)), a.mul(&b).mul(&c));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }
    }

    #[test]
    fn inverse_law() {
        let mut d = HmacDrbg::new(b"fp6-inv");
        for _ in 0..24 {
            let a = fp6(&mut d);
            if let Some(inv) = a.inverse() {
                assert_eq!(a.mul(&inv), Fp6::one());
            } else {
                assert!(a.is_zero());
            }
        }
    }

    #[test]
    fn one_is_identity() {
        let mut d = HmacDrbg::new(b"fp6-one");
        for _ in 0..24 {
            let a = fp6(&mut d);
            assert_eq!(a.mul(&Fp6::one()), a);
            assert_eq!(a.add(&Fp6::zero()), a);
        }
    }
}
