//! Computation-security scenario (paper's Computation-Cheating Model): an
//! analytics provider runs MapReduce-style aggregations for a retailer, but
//! skips half of the sub-tasks to save cycles and returns guesses. The
//! DA's probabilistic-sampling audit (Algorithm 1) exposes it, with the
//! sampling size chosen from the paper's Fig. 4 analysis.
//!
//! ```text
//! cargo run --release --example computation_audit
//! ```

use seccloud::cloudsim::{behavior::Behavior, CloudServer, DesignatedAgency};
use seccloud::core::analysis::sampling::{cheat_probability, required_sample_size, CheatParams};
use seccloud::core::computation::{ComputationRequest, ComputeFunction, RequestItem};
use seccloud::core::storage::DataBlock;
use seccloud::core::Sio;

fn main() {
    let sio = Sio::new(b"computation-audit-demo");
    let retailer = sio.register("analytics@retailer.example");
    let mut da = DesignatedAgency::new(&sio, "da.audit.example", b"agency");

    // A lazy provider: computes 50% of sub-tasks, guesses the rest from a
    // range of 2 plausible values (the paper's R = 2 worst case).
    let mut lazy = CloudServer::new(
        &sio,
        "cs-lazy",
        Behavior::ComputationCheater {
            csc: 0.5,
            guess_range: Some(2),
        },
        b"lazy",
    );
    let mut diligent = CloudServer::new(&sio, "cs-diligent", Behavior::Honest, b"diligent");

    // Upload a year of daily sales blocks to both providers.
    let sales: Vec<DataBlock> = (0..365u64)
        .map(|day| DataBlock::from_values(day, &[1000 + day % 50, 990 + day % 70]))
        .collect();
    for server in [&mut lazy, &mut diligent] {
        let signed = retailer.sign_blocks(&sales, &[server.public(), da.public()]);
        server.store(&retailer, signed);
    }

    // Weekly aggregation: 52 sub-tasks of 7 days each.
    let request = ComputationRequest::new(
        (0..52u64)
            .map(|week| RequestItem {
                function: ComputeFunction::Sum,
                positions: (week * 7..(week + 1) * 7).collect(),
            })
            .collect(),
    );

    // Pick t from the paper's analysis: the Fig. 4 anchor CSC = SSC = 0.5,
    // R = 2, ε = 1e-4 → t = 33 (conservative for our compute-only cheater).
    let params = CheatParams::new(0.5, 0.5).with_range(2.0);
    let t = required_sample_size(&params, 1e-4).expect("detectable cheater") as usize;
    println!(
        "Fig. 4 analysis: sampling t = {t} bounds the escape probability at {:.1e}",
        cheat_probability(&params, t as u32)
    );

    for (name, server) in [("lazy", &mut lazy), ("diligent", &mut diligent)] {
        let job = server
            .handle_computation(&retailer.identity().to_string(), &request, da.public())
            .expect("data stored");
        let verdict = da.audit(server, &job, &retailer, t, 0).expect("warranted");
        println!(
            "{name:>9}: sampled {} of 52 weeks → {} ({} bad samples)",
            verdict.challenge.len(),
            if verdict.detected {
                "CHEATING DETECTED"
            } else {
                "clean"
            },
            verdict.outcome.failures.len(),
        );
        if name == "lazy" {
            assert!(verdict.detected, "t = 33 catches a 50% cheater w.h.p.");
            for (week, failure) in verdict.outcome.failures.iter().take(3) {
                println!("          e.g. week {week}: {failure:?}");
            }
        } else {
            assert!(!verdict.detected, "honest provider passes");
        }
    }

    println!("\nThe retailer never recomputed the whole year — {t} samples decided it.");
}
