//! Randomized tests over tree shapes, sample sets and corruption
//! patterns, driven by the workspace DRBG for reproducibility.

use seccloud_hash::HmacDrbg;

use crate::{MerklePath, MerkleTree};

fn arb_data(d: &mut HmacDrbg) -> Vec<Vec<u8>> {
    let n = 1 + d.next_below(79) as usize;
    (0..n)
        .map(|_| {
            let len = d.next_below(24) as usize;
            d.next_bytes(len)
        })
        .collect()
}

#[test]
fn every_leaf_proves_and_verifies() {
    let mut d = HmacDrbg::new(b"merkle-prove");
    for _ in 0..48 {
        let data = arb_data(&mut d);
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let idx = d.next_below(data.len() as u64) as usize;
        let proof = tree.prove(idx).expect("in range");
        assert!(proof.verify(&tree.root(), &data[idx], idx));
        // And never verifies at a different index with the same data.
        let other = (idx + 1) % data.len();
        if other != idx {
            assert!(!proof.verify(&tree.root(), &data[idx], other));
        }
    }
}

#[test]
fn multiproof_verifies_for_random_subsets() {
    let mut d = HmacDrbg::new(b"merkle-multi");
    let mut cases = 0;
    while cases < 48 {
        let data = arb_data(&mut d);
        let n = data.len();
        let mask = d.next_u64();
        let indices: Vec<usize> = (0..n).filter(|i| (mask >> (i % 64)) & 1 == 1).collect();
        if indices.is_empty() {
            continue;
        }
        cases += 1;
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let proof = tree.prove_multi(&indices).expect("in range");
        let claims: Vec<(usize, &[u8])> =
            indices.iter().map(|&i| (i, data[i].as_slice())).collect();
        assert!(proof.verify(&tree.root(), &claims));
    }
}

#[test]
fn any_single_byte_corruption_is_detected() {
    let mut d = HmacDrbg::new(b"merkle-corrupt");
    for _ in 0..48 {
        let data = arb_data(&mut d);
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let idx = d.next_below(data.len() as u64) as usize;
        let proof = tree.prove(idx).expect("in range");
        let mut corrupted = data[idx].clone();
        if corrupted.is_empty() {
            corrupted.push(1);
        } else {
            let pos = d.next_below(corrupted.len() as u64) as usize;
            corrupted[pos] ^= 1 | (d.next_u64() as u8 & 0xfe);
        }
        assert!(!proof.verify(&tree.root(), &corrupted, idx));
    }
}

#[test]
fn paths_serialize_through_parts() {
    let mut d = HmacDrbg::new(b"merkle-parts");
    for _ in 0..48 {
        let data = arb_data(&mut d);
        let tree = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let idx = d.next_below(data.len() as u64) as usize;
        let proof = tree.prove(idx).expect("in range");
        let (siblings, leaf_count) = proof.clone().into_parts();
        let rebuilt = MerklePath::from_parts(siblings, leaf_count);
        assert_eq!(&rebuilt, &proof);
        assert!(rebuilt.verify(&tree.root(), &data[idx], idx));
    }
}

#[test]
fn roots_are_injective_over_leaf_count() {
    // Dropping the last leaf must change the root (no trivial
    // extension attacks across sizes).
    let mut d = HmacDrbg::new(b"merkle-inject");
    let mut cases = 0;
    while cases < 48 {
        let data = arb_data(&mut d);
        if data.len() < 2 {
            continue;
        }
        cases += 1;
        let full = MerkleTree::from_data(data.iter().map(Vec::as_slice));
        let truncated = MerkleTree::from_data(data[..data.len() - 1].iter().map(Vec::as_slice));
        assert_ne!(full.root(), truncated.root());
    }
}
