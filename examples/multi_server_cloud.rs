//! The full cloud model of paper Section III-A: a CSP splits a batch job
//! across a pool of servers under an SLA, a Byzantine adversary corrupts up
//! to `b` servers per epoch, and the DA audits every sub-task commitment —
//! batch-verifying signatures for efficiency (Section VI).
//!
//! ```text
//! cargo run --release --example multi_server_cloud
//! ```
//!
//! With `--net`, the same accountability story runs over real loopback
//! sockets: every server sits behind its own `NetServer`, a seeded
//! `ChaosProxy` injects 20% per-frame socket faults, and the DA audits
//! through `ResilientTransport` — Byzantine servers are still convicted,
//! honest ones still audit clean, and no socket fault is ever mistaken
//! for a cheat.
//!
//! ```text
//! cargo run --release --example multi_server_cloud -- --net
//! ```

use seccloud::cloudsim::{behavior::Behavior, Csp, DesignatedAgency, Sla};
use seccloud::core::computation::ComputeFunction;
use seccloud::core::storage::DataBlock;
use seccloud::core::Sio;
use seccloud::hash::HmacDrbg;

const SERVERS: usize = 5;
const BYZANTINE: usize = 2;
const BLOCKS: u64 = 40;

fn main() {
    if std::env::args().any(|a| a == "--net") {
        net::run_net_demo();
        return;
    }
    let sio = Sio::new(b"multi-server-demo");
    let lab = sio.register("genomics@lab.example");
    let mut da = DesignatedAgency::new(&sio, "da.audit.example", b"agency");
    let mut csp = Csp::new(
        &sio,
        SERVERS,
        Sla {
            max_subtasks_per_server: 16,
            replication: SERVERS, // full replication for scheduling freedom
            warrant_validity: 500,
        },
        b"pool",
    );

    // Upload: sign once, designated to every server and the DA.
    let dataset: Vec<DataBlock> = (0..BLOCKS)
        .map(|i| DataBlock::from_values(i, &[i * 13 % 97, i * 7 % 89, i]))
        .collect();
    let mut verifiers: Vec<_> = csp.servers().iter().map(|s| s.public().clone()).collect();
    verifiers.push(da.public().clone());
    let refs: Vec<&_> = verifiers.iter().collect();
    let placements = csp.store(&lab, &lab.sign_blocks(&dataset, &refs));
    println!("stored {BLOCKS} blocks × {SERVERS} replicas = {placements} placements");

    // A per-block statistics job, split across the pool.
    let request = Csp::plan_scan(&ComputeFunction::SumSquaredDeviation, BLOCKS, 5);
    let plan = csp.split_request(&request);
    println!(
        "job: {} sub-tasks split into {} slices across {} servers\n",
        request.len(),
        plan.len(),
        SERVERS
    );

    // The adversary corrupts a fresh subset each epoch.
    let mut adversary = HmacDrbg::new(b"byzantine-adversary");
    for epoch in 0..3u64 {
        csp.advance_epoch(
            BYZANTINE,
            Behavior::ComputationCheater {
                csc: 0.0,
                guess_range: None,
            },
            &mut adversary,
        );
        println!(
            "epoch {epoch}: adversary controls servers {:?}",
            csp.corrupted()
        );

        let executions = csp.execute(&lab, &request, da.public());
        let mut caught = Vec::new();
        for exec in &executions {
            let handle = exec.result.as_ref().expect("fully replicated");
            let verdict = da
                .audit(
                    &csp.servers()[exec.server_index],
                    handle,
                    &lab,
                    handle.request.len(), // full audit of each slice
                    epoch,
                )
                .expect("warranted audit");
            if verdict.detected {
                caught.push(exec.server_index);
            }
        }
        caught.sort_unstable();
        caught.dedup();
        println!("         audits flagged servers   {caught:?}");
        assert_eq!(
            caught,
            {
                let mut c = csp.corrupted();
                c.sort_unstable();
                c.retain(|i| executions.iter().any(|e| e.server_index == *i));
                c
            },
            "exactly the corrupted servers that received work are flagged"
        );
    }

    println!(
        "\nAcross every epoch the DA flagged exactly the Byzantine subset — \
         accountability is unambiguous (paper Section I: deciding whether the \
         provider or the user is responsible)."
    );
}

/// The `--net` mode: the pool speaks length-framed TCP on loopback, the
/// wire is actively hostile, and the verdicts do not change.
mod net {
    use seccloud::cloudsim::behavior::Behavior;
    use seccloud::cloudsim::rpc::encode_store_body;
    // lint: allow(transport, reason=the example wraps each raw endpoint in a NetServer and dials it over TCP)
    use seccloud::cloudsim::rpc::{WireServer, WireTransport};
    use seccloud::cloudsim::{CloudServer, DesignatedAgency};
    use seccloud::core::computation::{ComputationRequest, ComputeFunction, RequestItem};
    use seccloud::core::storage::DataBlock;
    use seccloud::core::Sio;
    use seccloud::net::{
        ChaosConfig, ChaosProxy, NetClientConfig, NetServer, NetServerConfig, NetTransport,
    };
    use seccloud::resilience::{
        run_job_resilient, AuditResolution, Op, ResilientTransport, RetryPolicy,
    };

    const SERVERS: usize = 5;
    const CHEATERS: [usize; 2] = [1, 3];
    const BLOCKS: u64 = 16;
    const FAULT_RATE_PCT: u32 = 20;

    pub fn run_net_demo() {
        let sio = Sio::new(b"multi-server-net-demo");
        let lab = sio.register("genomics@lab.example");
        let mut da = DesignatedAgency::new(&sio, "da.audit.example", b"agency");

        // One CloudServer per pool slot; the Byzantine subset cheats on
        // every computation.
        let servers: Vec<CloudServer> = (0..SERVERS)
            .map(|i| {
                let behavior = if CHEATERS.contains(&i) {
                    Behavior::ComputationCheater {
                        csc: 0.0,
                        guess_range: None,
                    }
                } else {
                    Behavior::Honest
                };
                CloudServer::new(&sio, &format!("cs{i}.pool.example"), behavior, b"pool")
            })
            .collect();

        // Sign the dataset once, designated to every server and the DA.
        let dataset: Vec<DataBlock> = (0..BLOCKS)
            .map(|i| DataBlock::from_values(i, &[i * 13 % 97, i * 7 % 89, i]))
            .collect();
        let mut verifiers: Vec<_> = servers.iter().map(|s| s.public().clone()).collect();
        verifiers.push(da.public().clone());
        let refs: Vec<&_> = verifiers.iter().collect();
        let signed = lab.sign_blocks(&dataset, &refs);
        let store_body = encode_store_body(&signed);

        // Stand the pool up on loopback: NetServer per server, a seeded
        // 20%-fault ChaosProxy in front of each, ResilientTransport on top.
        let mut stacks = Vec::new();
        for (i, server) in servers.into_iter().enumerate() {
            let verifier = server.public().clone();
            let signer = server.signer_public().clone();
            // lint: allow(transport, reason=the NetServer is constructed around the raw byte endpoint it serves)
            let net = NetServer::spawn(WireServer::new(server), NetServerConfig::default())
                .expect("loopback bind");
            let proxy = ChaosProxy::spawn(
                net.addr(),
                ChaosConfig {
                    seed: 7000 + i as u64,
                    fault_rate_pct: FAULT_RATE_PCT,
                    stall_ms: 10,
                },
            )
            .expect("proxy bind");
            // lint: allow(transport, reason=the raw socket client is immediately wrapped in ResilientTransport)
            let client =
                NetTransport::new(proxy.addr(), verifier, signer, NetClientConfig::default());
            let policy = RetryPolicy {
                max_attempts: 6,
                max_rounds: 6,
                ..RetryPolicy::default()
            };
            let transport = ResilientTransport::new(client, policy, &(i as u64).to_be_bytes());
            stacks.push((net, proxy, transport));
        }
        println!(
            "pool up: {SERVERS} servers on loopback TCP, each behind a \
             {FAULT_RATE_PCT}% socket-fault proxy (cheaters: {CHEATERS:?})"
        );

        // Upload over the chaotic wire — the resilient layer retries every
        // dropped, stalled, or cut frame.
        for (_, _, transport) in stacks.iter_mut() {
            transport
                .rpc_store(lab.identity(), &store_body)
                .expect("resilient store over chaos");
        }
        println!("stored {BLOCKS} blocks × {SERVERS} replicas over the wire");

        // The same per-block statistics job on every replica, audited with
        // full sampling so a completed audit cannot miss a cheat.
        let request = ComputationRequest::new(
            (0..BLOCKS)
                .map(|i| RequestItem {
                    function: ComputeFunction::SumSquaredDeviation,
                    positions: vec![i],
                })
                .collect(),
        );
        let mut caught = Vec::new();
        for (i, (_, _, transport)) in stacks.iter_mut().enumerate() {
            let resolution =
                run_job_resilient(&mut da, transport, &lab, &request, request.len(), 0);
            let faults: u64 = [Op::Store, Op::Compute, Op::Audit, Op::Retrieve]
                .iter()
                .map(|&op| transport.stats(op).transient_faults)
                .sum();
            match resolution {
                AuditResolution::Clean { .. } => {
                    println!("server {i}: audit clean      ({faults} socket faults absorbed)");
                }
                AuditResolution::Detected { .. } => {
                    println!("server {i}: CHEAT CONVICTED  ({faults} socket faults absorbed)");
                    caught.push(i);
                }
                AuditResolution::Unresolved { reason, .. } => {
                    panic!("server {i}: audit unresolved over loopback chaos: {reason}");
                }
            }
        }
        assert_eq!(
            caught,
            CHEATERS.to_vec(),
            "exactly the Byzantine subset is convicted over real sockets"
        );

        for (net, proxy, _) in stacks {
            proxy.shutdown();
            net.shutdown();
        }
        println!(
            "\nSame verdicts as the in-memory run: socket chaos is absorbed by \
             the resilience layer, cheating is not — the taxonomy keeps \
             channel weather and Byzantine behaviour apart."
        );
    }
}
