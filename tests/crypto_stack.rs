//! Cross-crate cryptographic consistency: the pairing, hash, Merkle and
//! signature layers composed through the facade crate.

use seccloud::bigint::{ApInt, U256};
use seccloud::hash::{HmacDrbg, Sha256};
use seccloud::ibs::{designate, sign, MasterKey};
use seccloud::merkle::MerkleTree;
use seccloud::pairing::{hash_to_g1, hash_to_g2, multi_pairing, pairing, Fr, Gt, G1, G2};

#[test]
fn pairing_bilinearity_exhaustive_small_scalars() {
    let p = G1::generator().to_affine();
    let q = G2::generator().to_affine();
    let base = pairing(&p, &q);
    for a in 1u64..=4 {
        for b in 1u64..=4 {
            let lhs = pairing(
                &G1::generator().mul_fr(&Fr::from_u64(a)).to_affine(),
                &G2::generator().mul_fr(&Fr::from_u64(b)).to_affine(),
            );
            let rhs = base.pow(&Fr::from_u64(a * b));
            assert_eq!(lhs, rhs, "e([{a}]P,[{b}]Q) = e(P,Q)^{}", a * b);
        }
    }
}

#[test]
fn gt_is_an_order_r_group() {
    let e = pairing(
        &hash_to_g1(b"gt-order").to_affine(),
        &hash_to_g2(b"gt-order").to_affine(),
    );
    // e^r = 1 via e^(r-1) · e
    let r_minus_1 = Fr::zero().sub(&Fr::one());
    assert_eq!(e.pow(&r_minus_1).mul(&e), Gt::one());
    // and inversion by conjugation matches e^(r-1)
    assert_eq!(e.invert(), e.pow(&r_minus_1));
}

#[test]
fn multi_pairing_is_the_batch_verifiers_backbone() {
    // e(P1,Q1)·e(P2,Q2)·e(-(P1),Q1)·e(-(P2),Q2) = 1
    let p1 = hash_to_g1(b"mp1");
    let p2 = hash_to_g1(b"mp2");
    let q1 = hash_to_g2(b"mq1");
    let q2 = hash_to_g2(b"mq2");
    let result = multi_pairing(&[
        (p1.to_affine(), q1.to_affine()),
        (p2.to_affine(), q2.to_affine()),
        (p1.neg().to_affine(), q1.to_affine()),
        (p2.neg().to_affine(), q2.to_affine()),
    ]);
    assert_eq!(result, Gt::one());
}

#[test]
fn fr_hash_is_uniform_enough_for_chi_square_sanity() {
    // Bucket 2000 hashed scalars into 16 bins by their low nibble; a wildly
    // skewed hash would fail this loose bound.
    let mut bins = [0u32; 16];
    for i in 0..2000u32 {
        let v = Fr::hash(&i.to_be_bytes());
        let nibble = (v.to_u256().as_u64() & 0xf) as usize;
        bins[nibble] += 1;
    }
    for (i, &count) in bins.iter().enumerate() {
        assert!(
            (75..=175).contains(&count),
            "bin {i} has {count}, expected ≈125"
        );
    }
}

#[test]
fn signature_over_merkle_root_binds_the_whole_tree() {
    // The pattern the computation protocol relies on: signing a Merkle root
    // authenticates every leaf transitively.
    let sio = MasterKey::from_seed(b"root-binding");
    let server = sio.extract_user("cs");
    let verifier = sio.extract_verifier("da");

    let leaves: Vec<Vec<u8>> = (0..16u32).map(|i| i.to_be_bytes().to_vec()).collect();
    let tree = MerkleTree::from_data(leaves.iter().map(Vec::as_slice));
    let signed_root = designate(&sign(&server, &tree.root(), b"n"), verifier.public());
    assert!(signed_root.verify(&verifier, server.public(), &tree.root()));

    // Any single-leaf change produces a different root, unverifiable under
    // the old signature.
    let mut leaves2 = leaves.clone();
    leaves2[9][0] ^= 1;
    let tree2 = MerkleTree::from_data(leaves2.iter().map(Vec::as_slice));
    assert!(!signed_root.verify(&verifier, server.public(), &tree2.root()));
}

#[test]
fn curve_order_matches_scalar_field_across_layers() {
    // r·G = O in both groups, and Fr wraps exactly at r.
    let r = Fr::modulus();
    assert!(G1::generator().mul_u256(&r).is_identity());
    assert!(G2::generator().mul_u256(&r).is_identity());
    let wrapped = Fr::from_u256(&r.wrapping_add(&U256::from_u64(5)));
    assert_eq!(wrapped, Fr::from_u64(5));
}

#[test]
fn bigint_backs_the_pairing_constants() {
    // (p¹² − 1) must be divisible by r (the pairing's target group exists).
    let p = ApInt::from_uint(&seccloud::pairing::Fp::modulus());
    let r = ApInt::from_uint(&Fr::modulus());
    let mut p12 = ApInt::one();
    for _ in 0..12 {
        p12 = &p12 * &p;
    }
    let p12_minus_1 = p12.checked_sub(&ApInt::one()).unwrap();
    assert!(p12_minus_1.rem(&r).is_zero());
}

#[test]
fn drbg_and_sha_interoperate_deterministically() {
    let mut d = HmacDrbg::new(b"interop");
    let bytes = d.next_bytes(64);
    let digest1 = Sha256::digest(&bytes);
    let mut d2 = HmacDrbg::new(b"interop");
    let digest2 = Sha256::digest(&d2.next_bytes(64));
    assert_eq!(digest1, digest2);
}

#[test]
fn hash_to_curve_domains_are_disjoint() {
    // The same identity string hashed as a user vs as a verifier gives
    // unrelated points (different groups AND different domains).
    let g1_point = hash_to_g1(b"same-identity");
    let g1_other = hash_to_g1(b"same-identity-2");
    assert_ne!(g1_point, g1_other);
    let q2 = hash_to_g2(b"same-identity");
    assert!(q2.is_torsion_free());
    // Pair them — the result must be a valid GT element, not identity.
    let e = pairing(&g1_point.to_affine(), &q2.to_affine());
    assert!(!e.is_one());
}
