//! The full cloud model of paper Section III-A: a CSP splits a batch job
//! across a pool of servers under an SLA, a Byzantine adversary corrupts up
//! to `b` servers per epoch, and the DA audits every sub-task commitment —
//! batch-verifying signatures for efficiency (Section VI).
//!
//! ```text
//! cargo run --release --example multi_server_cloud
//! ```

use seccloud::cloudsim::{behavior::Behavior, Csp, DesignatedAgency, Sla};
use seccloud::core::computation::ComputeFunction;
use seccloud::core::storage::DataBlock;
use seccloud::core::Sio;
use seccloud::hash::HmacDrbg;

const SERVERS: usize = 5;
const BYZANTINE: usize = 2;
const BLOCKS: u64 = 40;

fn main() {
    let sio = Sio::new(b"multi-server-demo");
    let lab = sio.register("genomics@lab.example");
    let mut da = DesignatedAgency::new(&sio, "da.audit.example", b"agency");
    let mut csp = Csp::new(
        &sio,
        SERVERS,
        Sla {
            max_subtasks_per_server: 16,
            replication: SERVERS, // full replication for scheduling freedom
            warrant_validity: 500,
        },
        b"pool",
    );

    // Upload: sign once, designated to every server and the DA.
    let dataset: Vec<DataBlock> = (0..BLOCKS)
        .map(|i| DataBlock::from_values(i, &[i * 13 % 97, i * 7 % 89, i]))
        .collect();
    let mut verifiers: Vec<_> = csp.servers().iter().map(|s| s.public().clone()).collect();
    verifiers.push(da.public().clone());
    let refs: Vec<&_> = verifiers.iter().collect();
    let placements = csp.store(&lab, &lab.sign_blocks(&dataset, &refs));
    println!("stored {BLOCKS} blocks × {SERVERS} replicas = {placements} placements");

    // A per-block statistics job, split across the pool.
    let request = Csp::plan_scan(&ComputeFunction::SumSquaredDeviation, BLOCKS, 5);
    let plan = csp.split_request(&request);
    println!(
        "job: {} sub-tasks split into {} slices across {} servers\n",
        request.len(),
        plan.len(),
        SERVERS
    );

    // The adversary corrupts a fresh subset each epoch.
    let mut adversary = HmacDrbg::new(b"byzantine-adversary");
    for epoch in 0..3u64 {
        csp.advance_epoch(
            BYZANTINE,
            Behavior::ComputationCheater {
                csc: 0.0,
                guess_range: None,
            },
            &mut adversary,
        );
        println!(
            "epoch {epoch}: adversary controls servers {:?}",
            csp.corrupted()
        );

        let executions = csp.execute(&lab, &request, da.public());
        let mut caught = Vec::new();
        for exec in &executions {
            let handle = exec.result.as_ref().expect("fully replicated");
            let verdict = da
                .audit(
                    &csp.servers()[exec.server_index],
                    handle,
                    &lab,
                    handle.request.len(), // full audit of each slice
                    epoch,
                )
                .expect("warranted audit");
            if verdict.detected {
                caught.push(exec.server_index);
            }
        }
        caught.sort_unstable();
        caught.dedup();
        println!("         audits flagged servers   {caught:?}");
        assert_eq!(
            caught,
            {
                let mut c = csp.corrupted();
                c.sort_unstable();
                c.retain(|i| executions.iter().any(|e| e.server_index == *i));
                c
            },
            "exactly the corrupted servers that received work are flagged"
        );
    }

    println!(
        "\nAcross every epoch the DA flagged exactly the Byzantine subset — \
         accountability is unambiguous (paper Section I: deciding whether the \
         provider or the user is responsible)."
    );
}
