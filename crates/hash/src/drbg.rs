//! Deterministic random bit generation (HMAC-DRBG, SP 800-90A style).

use crate::hmac::hmac_sha256;

/// A deterministic random bit generator seeded from arbitrary bytes.
///
/// Follows the HMAC_DRBG construction of NIST SP 800-90A (instantiate +
/// generate, no reseeding): `K`/`V` update chains keyed by HMAC-SHA256.
/// Used throughout the workspace wherever the protocol needs *reproducible*
/// randomness — nonce derivation in tests, audit challenge sampling, and the
/// Monte-Carlo simulator — so every experiment in `EXPERIMENTS.md` is
/// re-runnable bit-for-bit.
///
/// This is a correctness/reproducibility tool, not a hedge against a hostile
/// host RNG; production deployments would seed it from the OS.
///
/// # Examples
///
/// ```
/// use seccloud_hash::HmacDrbg;
/// let mut a = HmacDrbg::new(b"seed");
/// let mut b = HmacDrbg::new(b"seed");
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = HmacDrbg::new(b"other seed");
/// assert_ne!(a.next_u64(), c.next_u64());
/// ```
// lint: secret
#[derive(Clone)]
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
}

impl core::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The K/V chain determines every future output; never print it.
        f.debug_struct("HmacDrbg").finish_non_exhaustive()
    }
}

impl Drop for HmacDrbg {
    fn drop(&mut self) {
        self.wipe_state();
    }
}

impl HmacDrbg {
    /// Instantiates the generator from seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = Self {
            key: [0u8; 32],
            value: [1u8; 32],
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Derives an independent child generator labelled by `label`.
    ///
    /// Children with different labels produce unrelated streams; handy for
    /// giving each simulated cloud server its own deterministic randomness.
    pub fn fork(&mut self, label: &[u8]) -> Self {
        let mut seed = Vec::with_capacity(40 + label.len());
        seed.extend_from_slice(&self.next_bytes(32));
        seed.extend_from_slice(&(label.len() as u64).to_be_bytes());
        seed.extend_from_slice(label);
        Self::new(&seed)
    }

    /// Zeros the K/V chain; called from `Drop` and factored out so tests
    /// can observe the wipe without reading freed memory.
    fn wipe_state(&mut self) {
        crate::wipe(&mut self.key);
        crate::wipe(&mut self.value);
    }

    fn update(&mut self, data: Option<&[u8]>) {
        let mut buf = Vec::with_capacity(33 + data.map_or(0, <[u8]>::len));
        buf.extend_from_slice(&self.value);
        buf.push(0x00);
        if let Some(d) = data {
            buf.extend_from_slice(d);
        }
        self.key = hmac_sha256(&self.key, &buf);
        self.value = hmac_sha256(&self.key, &self.value);
        if let Some(d) = data {
            let mut buf = Vec::with_capacity(33 + d.len());
            buf.extend_from_slice(&self.value);
            buf.push(0x01);
            buf.extend_from_slice(d);
            self.key = hmac_sha256(&self.key, &buf);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }

    /// Produces `n` pseudorandom bytes.
    pub fn next_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            self.value = hmac_sha256(&self.key, &self.value);
            out.extend_from_slice(&self.value);
        }
        out.truncate(n);
        self.update(None);
        out
    }

    /// Produces a pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let b = self.next_bytes(8);
        u64::from_be_bytes(b.try_into().expect("8 bytes"))
    }

    /// Produces a uniform value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Produces a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Samples `k` distinct indices from `[0, n)` (Floyd's algorithm), in
    /// sorted order.
    ///
    /// This is the audit-challenge sampler of the paper's Section V-D step 1:
    /// "picks a random subset S = {c1, …, ct} from the domain [1, n]".
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: u64, k: u64) -> Vec<u64> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        let mut chosen = std::collections::BTreeSet::new();
        for j in n - k..n {
            let t = self.next_below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        assert_eq!(a.next_bytes(100), b.next_bytes(100));
        let mut c = HmacDrbg::new(b"seed2");
        assert_ne!(a.next_bytes(32), c.next_bytes(32));
    }

    #[test]
    fn forked_streams_diverge() {
        let mut root = HmacDrbg::new(b"root");
        let mut f1 = root.fork(b"server-1");
        let mut f2 = root.fork(b"server-2");
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut d = HmacDrbg::new(b"bounds");
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(d.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        HmacDrbg::new(b"x").next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut d = HmacDrbg::new(b"f64");
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = d.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniforms should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut d = HmacDrbg::new(b"sample");
        for (n, k) in [(10u64, 10u64), (100, 1), (100, 50), (1, 1), (5, 0)] {
            let s = d.sample_distinct(n, k);
            assert_eq!(s.len(), k as usize);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted & distinct");
            assert!(s.iter().all(|&v| v < n));
        }
    }

    #[test]
    fn sample_distinct_covers_domain() {
        // Over many draws of 1-of-4, every index should appear.
        let mut d = HmacDrbg::new(b"coverage");
        let mut seen = [false; 4];
        for _ in 0..200 {
            let s = d.sample_distinct(4, 1);
            seen[s[0] as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_rejects_oversized_k() {
        HmacDrbg::new(b"x").sample_distinct(3, 4);
    }

    #[test]
    fn drop_wipes_kv_chain() {
        let mut d = HmacDrbg::new(b"to be wiped");
        d.next_bytes(32);
        assert_ne!(d.key, [0u8; 32]);
        assert_ne!(d.value, [0u8; 32]);
        d.wipe_state();
        assert_eq!(d.key, [0u8; 32]);
        assert_eq!(d.value, [0u8; 32]);
    }

    #[test]
    fn debug_is_redacted() {
        let d = HmacDrbg::new(b"secret seed");
        let rendered = format!("{d:?}");
        assert!(!rendered.contains("key"), "{rendered}");
        assert!(!rendered.contains("value"), "{rendered}");
    }
}
