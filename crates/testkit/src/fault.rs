//! Deterministic fault injection for the byte-level protocol.
//!
//! [`FaultyChannel`] wraps any [`WireTransport`] and mangles the byte
//! payload crossing each endpoint — the uploaded block stream for
//! `STORE`, the returned commitment for `COMPUTE`, the audit response for
//! `AUDIT`, the served block for `RETRIEVE` — according to a schedule
//! drawn from an [`HmacDrbg`], so every run replays exactly from its seed.
//! Honest payloads are recorded before mangling, which makes the replay
//! faults deliver *authentic old messages* (the classic network attack)
//! rather than garbage.
//!
//! The identities returned by [`WireTransport::peer_verifier`] /
//! [`WireTransport::peer_signer`] pass through untouched: they model
//! PKI-anchored knowledge, which a man-in-the-middle cannot rewrite.

use seccloud_cloudsim::rpc::{RpcError, WireTransport};
use seccloud_hash::HmacDrbg;
use seccloud_ibs::{UserPublic, VerifierPublic};

/// The eight byte-stream faults the channel can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the payload short at a random point.
    Truncate,
    /// Flip one random bit.
    BitFlip,
    /// Rewrite a plausible length field to a lying value.
    LengthLie,
    /// Deliver the previous payload seen on this endpoint (same epoch).
    ReplayPrevious,
    /// Deliver the latest payload seen on a *different* endpoint.
    CrossSwap,
    /// Deliver a payload recorded in an earlier epoch.
    StaleReplay,
    /// Deliver the payload twice, concatenated.
    Duplicate,
    /// Deliver the second-most-recent payload for this endpoint
    /// (out-of-order delivery).
    Reorder,
}

impl FaultKind {
    /// Every fault kind, for exhaustive sweeps.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::Truncate,
        FaultKind::BitFlip,
        FaultKind::LengthLie,
        FaultKind::ReplayPrevious,
        FaultKind::CrossSwap,
        FaultKind::StaleReplay,
        FaultKind::Duplicate,
        FaultKind::Reorder,
    ];
}

/// The four byte-level endpoints, as fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// Block upload (the request body is the mangled stream).
    Store,
    /// Computation dispatch (the returned commitment bytes).
    Compute,
    /// Challenge/response (the returned audit response bytes).
    Audit,
    /// Block retrieval (the returned block bytes).
    Retrieve,
}

impl Endpoint {
    /// Every endpoint, for exhaustive sweeps.
    pub const ALL: [Endpoint; 4] = [
        Endpoint::Store,
        Endpoint::Compute,
        Endpoint::Audit,
        Endpoint::Retrieve,
    ];
}

/// One injected fault, as recorded in the [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Which endpoint's payload was mangled.
    pub endpoint: Endpoint,
    /// The fault that was requested.
    pub kind: FaultKind,
    /// What actually happened (including fallbacks when a replay had no
    /// history to draw from).
    pub detail: String,
}

/// The full record of a channel's injections — two channels built from the
/// same seed over the same call sequence produce equal plans, which is the
/// replayability contract the harness asserts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the schedule was drawn from.
    pub seed: u64,
    /// Every fault, in injection order.
    pub injected: Vec<Fault>,
}

/// A fault-injecting wrapper around a [`WireTransport`].
pub struct FaultyChannel<T> {
    inner: T,
    drbg: HmacDrbg,
    fault_rate: f64,
    forced: Option<(Endpoint, FaultKind)>,
    /// When set, `forced` only applies to this many more payloads on its
    /// endpoint, then the channel turns clean (recovery-mode sweeps).
    forced_burst: Option<u32>,
    epoch: u64,
    /// Honest payloads seen so far: `(endpoint, epoch, bytes)`.
    history: Vec<(Endpoint, u64, Vec<u8>)>,
    plan: FaultPlan,
}

impl<T> std::fmt::Debug for FaultyChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyChannel")
            .field("seed", &self.plan.seed)
            .field("fault_rate", &self.fault_rate)
            .field("forced", &self.forced)
            .field("epoch", &self.epoch)
            .field("injected", &self.plan.injected.len())
            .finish()
    }
}

impl<T: WireTransport> FaultyChannel<T> {
    /// Wraps `inner`; each payload is mangled with probability
    /// `fault_rate`, with both the dice and the mangling drawn from `seed`.
    pub fn new(inner: T, seed: u64, fault_rate: f64) -> Self {
        let mut label = b"seccloud-testkit/fault/".to_vec();
        label.extend_from_slice(&seed.to_be_bytes());
        Self {
            inner,
            drbg: HmacDrbg::new(&label),
            fault_rate,
            forced: None,
            forced_burst: None,
            epoch: 0,
            history: Vec::new(),
            plan: FaultPlan {
                seed,
                injected: Vec::new(),
            },
        }
    }

    /// Forces exactly `kind` on every payload crossing `endpoint` (other
    /// endpoints stay clean); `None` returns to probabilistic mode. Used
    /// by the exhaustive single-fault sweep.
    pub fn set_forced(&mut self, forced: Option<(Endpoint, FaultKind)>) {
        self.forced = forced;
        self.forced_burst = None;
    }

    /// Forces `kind` on the next `count` payloads crossing `endpoint`,
    /// after which the channel turns clean. This is the recovery-mode
    /// schedule: a finite burst that a correct retry layer must mask
    /// completely, where [`set_forced`](Self::set_forced) models a
    /// permanently dead path that must trip the breaker instead.
    pub fn set_forced_burst(&mut self, endpoint: Endpoint, kind: FaultKind, count: u32) {
        self.forced = Some((endpoint, kind));
        self.forced_burst = Some(count);
    }

    /// Starts a new epoch: payloads recorded before this point become
    /// `StaleReplay` material.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The record of every fault injected so far.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped transport (ground-truth assertions in tests).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the channel.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Decides whether this payload gets a fault.
    fn roll(&mut self, endpoint: Endpoint) -> Option<FaultKind> {
        match self.forced {
            Some((e, k)) => {
                if e != endpoint {
                    return None;
                }
                match &mut self.forced_burst {
                    None => Some(k),
                    Some(0) => None,
                    Some(left) => {
                        *left -= 1;
                        Some(k)
                    }
                }
            }
            None => {
                if self.fault_rate > 0.0 && self.drbg.next_f64() < self.fault_rate {
                    FaultKind::ALL
                        .get(self.drbg.next_below(8) as usize)
                        .copied()
                } else {
                    None
                }
            }
        }
    }

    /// Latest recorded payload matching `pred`, newest first.
    fn latest<F: Fn(Endpoint, u64) -> bool>(&self, pred: F, skip: usize) -> Option<&[u8]> {
        self.history
            .iter()
            .rev()
            .filter(|(e, ep, _)| pred(*e, *ep))
            .nth(skip)
            .map(|(_, _, b)| b.as_slice())
    }

    /// Flips one DRBG-chosen bit (the universal fallback fault).
    fn bit_flip(drbg: &mut HmacDrbg, bytes: &mut Vec<u8>) -> String {
        if bytes.is_empty() {
            bytes.push(1);
            return "bit-flip on empty payload: injected 0x01".into();
        }
        let pos = drbg.next_below(bytes.len() as u64) as usize;
        let bit = drbg.next_below(8) as u8;
        bytes[pos] ^= 1 << bit;
        format!("flip byte {pos} bit {bit}")
    }

    /// Applies `kind` to `bytes`, returning the mangled payload and a
    /// human-readable record of what happened.
    fn apply(&mut self, endpoint: Endpoint, kind: FaultKind, bytes: &[u8]) -> (Vec<u8>, String) {
        let mut out = bytes.to_vec();
        let epoch = self.epoch;
        let detail = match kind {
            FaultKind::Truncate => {
                let cut = self.drbg.next_below(out.len() as u64) as usize;
                let detail = format!("truncate {} -> {cut} bytes", out.len());
                out.truncate(cut);
                detail
            }
            FaultKind::BitFlip => Self::bit_flip(&mut self.drbg, &mut out),
            FaultKind::LengthLie => {
                // Candidate length fields: 8-byte BE windows holding a
                // small nonzero value (how the wire format encodes
                // collection and byte lengths).
                let candidates: Vec<usize> = (0..out.len().saturating_sub(8))
                    .filter(|&i| {
                        let v = u64::from_be_bytes(out[i..i + 8].try_into().expect("8"));
                        (1..4096).contains(&v)
                    })
                    .collect();
                if candidates.is_empty() {
                    format!(
                        "no length field found; {}",
                        Self::bit_flip(&mut self.drbg, &mut out)
                    )
                } else {
                    let at = candidates[self.drbg.next_below(candidates.len() as u64) as usize];
                    let old = u64::from_be_bytes(out[at..at + 8].try_into().expect("8"));
                    let lie = old + 1 + self.drbg.next_below(1 << 20);
                    out[at..at + 8].copy_from_slice(&lie.to_be_bytes());
                    format!("length field at {at}: {old} -> {lie}")
                }
            }
            FaultKind::ReplayPrevious => {
                match self.latest(|e, ep| e == endpoint && ep == epoch, 0) {
                    Some(prev) => {
                        let detail = format!("replayed previous payload ({} bytes)", prev.len());
                        out = prev.to_vec();
                        detail
                    }
                    None => format!(
                        "no history to replay; {}",
                        Self::bit_flip(&mut self.drbg, &mut out)
                    ),
                }
            }
            FaultKind::CrossSwap => match self.latest(|e, _| e != endpoint, 0) {
                Some(prev) => {
                    let detail = format!("cross-endpoint payload ({} bytes)", prev.len());
                    out = prev.to_vec();
                    detail
                }
                None => format!(
                    "no cross-endpoint history; {}",
                    Self::bit_flip(&mut self.drbg, &mut out)
                ),
            },
            FaultKind::StaleReplay => match self.latest(|e, ep| e == endpoint && ep < epoch, 0) {
                Some(prev) => {
                    let detail = format!("stale epoch payload ({} bytes)", prev.len());
                    out = prev.to_vec();
                    detail
                }
                None => format!(
                    "no stale history; {}",
                    Self::bit_flip(&mut self.drbg, &mut out)
                ),
            },
            FaultKind::Duplicate => {
                out.extend_from_slice(bytes);
                format!(
                    "duplicated payload ({} -> {} bytes)",
                    bytes.len(),
                    out.len()
                )
            }
            FaultKind::Reorder => match self.latest(|e, ep| e == endpoint && ep == epoch, 1) {
                Some(prev) => {
                    let detail =
                        format!("reordered: delivered older payload ({} bytes)", prev.len());
                    out = prev.to_vec();
                    detail
                }
                None => format!(
                    "too little history to reorder; {}",
                    Self::bit_flip(&mut self.drbg, &mut out)
                ),
            },
        };
        (out, detail)
    }

    /// Passes one payload through the channel: possibly mangles it,
    /// records the honest copy for future replays, and logs the fault.
    fn transit(&mut self, endpoint: Endpoint, honest: Vec<u8>) -> Vec<u8> {
        let delivered = match self.roll(endpoint) {
            None => honest.clone(),
            Some(kind) => {
                let (mangled, detail) = self.apply(endpoint, kind, &honest);
                self.plan.injected.push(Fault {
                    endpoint,
                    kind,
                    detail,
                });
                mangled
            }
        };
        self.history.push((endpoint, self.epoch, honest));
        delivered
    }
}

impl<T: WireTransport> WireTransport for FaultyChannel<T> {
    fn rpc_store(&mut self, owner_identity: &str, body: &[u8]) -> Result<u64, RpcError> {
        let body = self.transit(Endpoint::Store, body.to_vec());
        self.inner.rpc_store(owner_identity, &body)
    }

    fn rpc_compute(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        body: &[u8],
    ) -> Result<(u64, Vec<u8>), RpcError> {
        let (job_id, commitment) =
            self.inner
                .rpc_compute(owner_identity, auditor_identity, body)?;
        Ok((job_id, self.transit(Endpoint::Compute, commitment)))
    }

    fn rpc_audit(
        &mut self,
        owner_identity: &str,
        auditor_identity: &str,
        job_id: u64,
        challenge_bytes: &[u8],
        warrant_bytes: &[u8],
        now: u64,
    ) -> Result<Vec<u8>, RpcError> {
        let response = self.inner.rpc_audit(
            owner_identity,
            auditor_identity,
            job_id,
            challenge_bytes,
            warrant_bytes,
            now,
        )?;
        Ok(self.transit(Endpoint::Audit, response))
    }

    fn rpc_retrieve(&mut self, owner_identity: &str, position: u64) -> Option<Vec<u8>> {
        let block = self.inner.rpc_retrieve(owner_identity, position)?;
        Some(self.transit(Endpoint::Retrieve, block))
    }

    fn peer_verifier(&self) -> VerifierPublic {
        self.inner.peer_verifier()
    }

    fn peer_signer(&self) -> UserPublic {
        self.inner.peer_signer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transport that records calls and echoes fixed payloads — lets the
    /// channel be tested without spinning up a full server world.
    struct EchoTransport {
        audit_payload: Vec<u8>,
    }

    impl WireTransport for EchoTransport {
        fn rpc_store(&mut self, _owner: &str, body: &[u8]) -> Result<u64, RpcError> {
            Ok(body.len() as u64)
        }
        fn rpc_compute(
            &mut self,
            _owner: &str,
            _auditor: &str,
            body: &[u8],
        ) -> Result<(u64, Vec<u8>), RpcError> {
            Ok((7, body.to_vec()))
        }
        fn rpc_audit(
            &mut self,
            _owner: &str,
            _auditor: &str,
            _job: u64,
            _challenge: &[u8],
            _warrant: &[u8],
            _now: u64,
        ) -> Result<Vec<u8>, RpcError> {
            Ok(self.audit_payload.clone())
        }
        fn rpc_retrieve(&mut self, _owner: &str, position: u64) -> Option<Vec<u8>> {
            Some(vec![position as u8; 4])
        }
        fn peer_verifier(&self) -> VerifierPublic {
            VerifierPublic::from_identity("echo")
        }
        fn peer_signer(&self) -> UserPublic {
            UserPublic::from_identity("echo")
        }
    }

    fn echo() -> EchoTransport {
        EchoTransport {
            audit_payload: vec![9, 9, 9, 9, 9, 9, 9, 9],
        }
    }

    #[test]
    fn clean_channel_is_transparent() {
        let mut ch = FaultyChannel::new(echo(), 1, 0.0);
        assert_eq!(ch.rpc_store("alice", &[1, 2, 3]).unwrap(), 3);
        assert_eq!(ch.rpc_retrieve("alice", 5).unwrap(), vec![5; 4]);
        assert!(ch.plan().injected.is_empty());
    }

    #[test]
    fn forced_truncate_shortens_payload() {
        let mut ch = FaultyChannel::new(echo(), 2, 0.0);
        ch.set_forced(Some((Endpoint::Audit, FaultKind::Truncate)));
        let resp = ch.rpc_audit("alice", "da", 0, b"", b"", 0).unwrap();
        assert!(resp.len() < 8, "truncated from 8 to {}", resp.len());
        assert_eq!(ch.plan().injected.len(), 1);
        assert_eq!(ch.plan().injected[0].kind, FaultKind::Truncate);
        // Other endpoints stay clean under a forced Audit fault.
        assert_eq!(ch.rpc_retrieve("alice", 3).unwrap(), vec![3; 4]);
    }

    #[test]
    fn replay_delivers_the_previous_honest_payload() {
        let mut ch = FaultyChannel::new(echo(), 3, 0.0);
        let first = ch.rpc_retrieve("alice", 1).unwrap();
        ch.set_forced(Some((Endpoint::Retrieve, FaultKind::ReplayPrevious)));
        let second = ch.rpc_retrieve("alice", 2).unwrap();
        assert_eq!(second, first, "old payload delivered for new request");
    }

    #[test]
    fn stale_replay_needs_an_earlier_epoch() {
        let mut ch = FaultyChannel::new(echo(), 4, 0.0);
        ch.rpc_retrieve("alice", 1).unwrap();
        ch.advance_epoch();
        ch.set_forced(Some((Endpoint::Retrieve, FaultKind::StaleReplay)));
        let got = ch.rpc_retrieve("alice", 2).unwrap();
        assert_eq!(got, vec![1; 4], "epoch-0 payload delivered in epoch 1");
        assert!(ch.plan().injected[0].detail.contains("stale"));
    }

    #[test]
    fn replay_without_history_falls_back_to_bit_flip() {
        let mut ch = FaultyChannel::new(echo(), 5, 0.0);
        ch.set_forced(Some((Endpoint::Audit, FaultKind::ReplayPrevious)));
        let resp = ch.rpc_audit("alice", "da", 0, b"", b"", 0).unwrap();
        assert_ne!(resp, vec![9; 8], "fallback still mangles the payload");
        assert!(ch.plan().injected[0].detail.contains("no history"));
    }

    #[test]
    fn duplicate_self_concatenates() {
        let mut ch = FaultyChannel::new(echo(), 6, 0.0);
        ch.set_forced(Some((Endpoint::Audit, FaultKind::Duplicate)));
        let resp = ch.rpc_audit("alice", "da", 0, b"", b"", 0).unwrap();
        assert_eq!(resp, [vec![9; 8], vec![9; 8]].concat());
    }

    #[test]
    fn forced_burst_faults_then_heals() {
        let mut ch = FaultyChannel::new(echo(), 8, 0.0);
        ch.set_forced_burst(Endpoint::Audit, FaultKind::Truncate, 2);
        assert!(ch.rpc_audit("alice", "da", 0, b"", b"", 0).unwrap().len() < 8);
        // Other endpoints stay clean mid-burst and don't consume it.
        assert_eq!(ch.rpc_retrieve("alice", 1).unwrap(), vec![1; 4]);
        assert!(ch.rpc_audit("alice", "da", 0, b"", b"", 0).unwrap().len() < 8);
        assert_eq!(
            ch.rpc_audit("alice", "da", 0, b"", b"", 0).unwrap(),
            vec![9; 8],
            "burst exhausted: channel delivers honestly"
        );
        assert_eq!(ch.plan().injected.len(), 2);
    }

    #[test]
    fn set_forced_clears_a_pending_burst() {
        let mut ch = FaultyChannel::new(echo(), 9, 0.0);
        ch.set_forced_burst(Endpoint::Audit, FaultKind::Truncate, 5);
        ch.set_forced(Some((Endpoint::Audit, FaultKind::Duplicate)));
        for _ in 0..8 {
            let resp = ch.rpc_audit("alice", "da", 0, b"", b"", 0).unwrap();
            assert_eq!(resp.len(), 16, "unlimited forced mode, not a burst");
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let run = |seed| {
            let mut ch = FaultyChannel::new(echo(), seed, 0.7);
            for i in 0..20 {
                let _ = ch.rpc_retrieve("alice", i);
                let _ = ch.rpc_audit("alice", "da", 0, b"", b"", 0);
            }
            ch.plan().clone()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds, different schedules");
        assert!(!run(42).injected.is_empty());
    }

    #[test]
    fn peer_identities_pass_through_unmangled() {
        let mut ch = FaultyChannel::new(echo(), 7, 1.0);
        ch.set_forced(None);
        for i in 0..10 {
            let _ = ch.rpc_retrieve("alice", i);
        }
        assert_eq!(ch.peer_verifier().identity(), "echo");
        assert_eq!(ch.peer_signer().identity(), "echo");
    }
}
