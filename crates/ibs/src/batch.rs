//! Batch verification of designated signatures (paper Section VI).
//!
//! Given `ℓ` designated signatures `{(Uᵢⱼ, Σᵢⱼ)}` from `k` users, the
//! verifier aggregates
//!
//! ```text
//! Σ_A = Πᵢⱼ Σᵢⱼ                      (GT multiplications)
//! U_A = Σᵢⱼ (Uᵢⱼ + H2(Uᵢⱼ‖mᵢⱼ)·Q_IDᵢ)  (G1 additions)
//! ```
//!
//! and accepts iff `ê(U_A, sk_V) = Σ_A` (eq. 8), whose correctness is the
//! paper's eq. 9. Individual verification costs one pairing per signature;
//! the batch costs one pairing total — the source of the constant-vs-linear
//! gap in Fig. 5 and Table II.

use seccloud_pairing::{pairing_prepared, Fr, Gt, G1};

use crate::keys::{UserPublic, VerifierKey};
use crate::sign::{challenge_hash, DesignatedSignature};

/// One signature in a batch: the signer, the message, and the designated
/// signature to fold in.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// The signer's public identity data.
    pub signer: UserPublic,
    /// The signed message bytes.
    pub message: Vec<u8>,
    /// The designated signature `(U, Σ)`.
    pub signature: DesignatedSignature,
}

/// An incremental batch verifier ("the signature combination can be
/// performed incrementally", Section VI).
///
/// # Examples
///
/// ```
/// use seccloud_ibs::{designate, sign, BatchVerifier, MasterKey};
///
/// let sio = MasterKey::from_seed(b"batch-doc");
/// let server = sio.extract_verifier("cs");
/// let mut batch = BatchVerifier::new();
/// for (who, msg) in [("alice", b"m1".as_slice()), ("bob", b"m2")] {
///     let user = sio.extract_user(who);
///     let sig = designate(&sign(&user, msg, b"n"), server.public());
///     batch.push(user.public().clone(), msg.to_vec(), sig);
/// }
/// assert!(batch.verify(&server));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BatchVerifier {
    /// Running `U_A` accumulator.
    u_acc: Option<G1>,
    /// Running `Σ_A` accumulator.
    sigma_acc: Option<Gt>,
    /// Number of folded signatures.
    len: usize,
}

impl BatchVerifier {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of signatures folded in so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Folds one signature into the running aggregate (cheap: one `G1`
    /// scalar-mul + addition and one `GT` multiplication — no pairing).
    pub fn push(&mut self, signer: UserPublic, message: Vec<u8>, signature: DesignatedSignature) {
        self.push_item(&BatchItem {
            signer,
            message,
            signature,
        });
    }

    /// Folds a [`BatchItem`] by reference.
    pub fn push_item(&mut self, item: &BatchItem) {
        let h: Fr = challenge_hash(item.signature.u(), &item.message);
        let term = item.signature.u().add(&item.signer.q().mul_fr(&h));
        self.u_acc = Some(match &self.u_acc {
            Some(acc) => acc.add(&term),
            None => term,
        });
        self.sigma_acc = Some(match &self.sigma_acc {
            Some(acc) => acc.mul(item.signature.sigma()),
            None => *item.signature.sigma(),
        });
        self.len += 1;
    }

    /// Runs the single-pairing batch check `ê(U_A, sk_V) = Σ_A`.
    ///
    /// An empty batch verifies trivially (`1 = 1`).
    pub fn verify(&self, verifier: &VerifierKey) -> bool {
        self.verify_prepared(&verifier.sk_prepared())
    }

    /// The batch check against an explicit prepared key handle (callers
    /// that amortize `sk_V` lookups through a
    /// [`seccloud_pairing::cache::PreparedCache`] — e.g. the sharded epoch
    /// verifier — resolve the handle once and reuse it).
    pub fn verify_prepared(&self, prepared: &seccloud_pairing::G2Prepared) -> bool {
        match (&self.u_acc, &self.sigma_acc) {
            (Some(u), Some(sigma)) => pairing_prepared(&u.to_affine(), prepared) == *sigma,
            _ => true,
        }
    }

    /// The running aggregate `(U_A, Σ_A)`, or `None` for an empty batch.
    ///
    /// Exposing the fold lets a higher layer (the sharded registry's epoch
    /// verifier) combine many per-shard batches into a *single*
    /// `multi_miller_loop` call instead of one pairing per batch.
    pub fn aggregate(&self) -> Option<(G1, Gt)> {
        match (&self.u_acc, &self.sigma_acc) {
            (Some(u), Some(sigma)) => Some((*u, *sigma)),
            _ => None,
        }
    }

    /// Merges another batch into this one (useful when sub-batches are
    /// aggregated concurrently and combined at the end).
    pub fn merge(&mut self, other: &BatchVerifier) {
        if let Some(u) = &other.u_acc {
            self.u_acc = Some(match &self.u_acc {
                Some(acc) => acc.add(u),
                None => *u,
            });
        }
        if let Some(s) = &other.sigma_acc {
            self.sigma_acc = Some(match &self.sigma_acc {
                Some(acc) => acc.mul(s),
                None => *s,
            });
        }
        self.len += other.len;
    }
}

/// Verifies a slice of batch items one by one (the `2ℓ`-pairing baseline the
/// paper compares against; here each check is one pairing since `Σ` is
/// precomputed). Returns the index of the first invalid item, or `None` when
/// all verify.
pub fn verify_individually(items: &[BatchItem], verifier: &VerifierKey) -> Option<usize> {
    items
        .iter()
        .position(|item| !item.signature.verify(verifier, &item.signer, &item.message))
}

/// Parallel variant of [`verify_individually`]: fans the per-item pairing
/// checks out over [`seccloud_parallel::num_threads`] workers. Same result
/// as the serial version for any worker count (each check is independent).
pub fn verify_individually_parallel(items: &[BatchItem], verifier: &VerifierKey) -> Option<usize> {
    // Materialize the prepared key once, before the fan-out, so workers
    // share the cache instead of racing to initialize it.
    let _ = verifier.sk_prepared();
    let outcomes = seccloud_parallel::parallel_map(items, |_, item| {
        item.signature.verify(verifier, &item.signer, &item.message)
    });
    outcomes.iter().position(|ok| !ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::MasterKey;
    use crate::sign::{designate, sign};
    use seccloud_pairing::pairing;

    fn make_items(n: usize, users: usize, seed: &str) -> (MasterKey, VerifierKey, Vec<BatchItem>) {
        let m = MasterKey::from_seed(seed.as_bytes());
        let v = m.extract_verifier("cs-batch");
        let items = (0..n)
            .map(|i| {
                let user = m.extract_user(&format!("user-{}", i % users));
                let msg = format!("block-{i}").into_bytes();
                let sig = designate(&sign(&user, &msg, b"n"), v.public());
                BatchItem {
                    signer: user.public().clone(),
                    message: msg,
                    signature: sig,
                }
            })
            .collect();
        (m, v, items)
    }

    #[test]
    fn batch_accepts_valid_multi_user_set() {
        let (_, v, items) = make_items(12, 4, "batch-ok");
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert_eq!(b.len(), 12);
        assert!(b.verify(&v));
        assert_eq!(verify_individually(&items, &v), None);
    }

    #[test]
    fn empty_batch_is_trivially_valid() {
        let m = MasterKey::from_seed(b"empty");
        let v = m.extract_verifier("cs");
        assert!(BatchVerifier::new().verify(&v));
        assert!(BatchVerifier::new().is_empty());
    }

    #[test]
    fn single_item_batch_equals_individual() {
        let (_, v, items) = make_items(1, 1, "single");
        let mut b = BatchVerifier::new();
        b.push_item(&items[0]);
        assert!(b.verify(&v));
    }

    #[test]
    fn one_bad_signature_poisons_the_batch() {
        let (_, v, mut items) = make_items(8, 3, "poison");
        // Corrupt item 5's message after signing.
        items[5].message = b"tampered".to_vec();
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert!(!b.verify(&v));
        assert_eq!(verify_individually(&items, &v), Some(5));
    }

    #[test]
    fn wrong_verifier_rejects_batch() {
        let (m, _, items) = make_items(4, 2, "wrongv");
        let other = m.extract_verifier("someone-else");
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert!(!b.verify(&other));
    }

    #[test]
    fn merge_equals_sequential_push() {
        let (_, v, items) = make_items(10, 5, "merge");
        let mut whole = BatchVerifier::new();
        for item in &items {
            whole.push_item(item);
        }
        let mut left = BatchVerifier::new();
        let mut right = BatchVerifier::new();
        for item in &items[..4] {
            left.push_item(item);
        }
        for item in &items[4..] {
            right.push_item(item);
        }
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        assert_eq!(left.verify(&v), whole.verify(&v));
        assert!(left.verify(&v));
    }

    #[test]
    fn forged_sigma_cannot_pass_even_if_u_adjusted() {
        // An adversary who scales Σ must break the pairing relation.
        let (_, v, mut items) = make_items(3, 1, "forge");
        let bad = items[0].signature.sigma().mul(items[1].signature.sigma());
        items[0].signature =
            crate::sign::DesignatedSignature::from_parts(*items[0].signature.u(), bad);
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert!(!b.verify(&v));
    }

    #[test]
    fn swapped_signatures_between_messages_fail() {
        // Valid signatures attached to the wrong messages must not slip
        // through the aggregate (they cancel only with negligible prob).
        let (_, v, mut items) = make_items(2, 2, "swap");
        let s0 = items[0].signature.clone();
        items[0].signature = items[1].signature.clone();
        items[1].signature = s0;
        let mut b = BatchVerifier::new();
        for item in &items {
            b.push_item(item);
        }
        assert!(!b.verify(&v));
    }

    #[test]
    fn batch_is_order_independent() {
        let (_, v, items) = make_items(6, 3, "order");
        let mut fwd = BatchVerifier::new();
        let mut rev = BatchVerifier::new();
        for item in &items {
            fwd.push_item(item);
        }
        for item in items.iter().rev() {
            rev.push_item(item);
        }
        assert!(fwd.verify(&v) && rev.verify(&v));
    }

    #[test]
    fn identity_scaled_sigma_rejected() {
        // Multiplying Σ by a nontrivial GT element must break verification.
        let (_, v, mut items) = make_items(1, 1, "scale");
        let tweak = pairing(&G1::generator().to_affine(), &v.public().q().to_affine());
        let bad = items[0].signature.sigma().mul(&tweak);
        items[0].signature =
            crate::sign::DesignatedSignature::from_parts(*items[0].signature.u(), bad);
        let mut b = BatchVerifier::new();
        b.push_item(&items[0]);
        assert!(!b.verify(&v));
        let _ = Fr::zero().is_zero(); // keep FieldElement import exercised
    }
}
