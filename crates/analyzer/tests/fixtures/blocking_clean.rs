//! Fixture: the blocking-policy shapes done right. Expensive work runs
//! after the guard is dropped (explicitly or by scope), sleeps happen
//! between lock acquisitions, and the one deliberate under-lock call
//! carries a reason-bearing `lint: lock(...)` escape.

use std::sync::Mutex;
use std::time::Duration;

pub struct State {
    inner: Mutex<u64>,
}

fn miller_loop(x: u64) -> u64 {
    x.wrapping_mul(3)
}

impl State {
    fn read(&self) -> u64 {
        self.inner.lock().map(|g| *g).unwrap_or(0)
    }

    pub fn pair_after_drop(&self) -> u64 {
        let Ok(g) = self.inner.lock() else { return 0 };
        let snapshot = g.wrapping_add(0);
        drop(g);
        miller_loop(snapshot)
    }

    pub fn pair_after_scope(&self) -> u64 {
        let snapshot = self.read();
        miller_loop(snapshot)
    }

    pub fn sleep_between_polls(&self) -> u64 {
        let v = self.read();
        std::thread::sleep(Duration::from_millis(1));
        v
    }

    pub fn justified(&self) -> u64 {
        let Ok(g) = self.inner.lock() else { return 0 };
        // lint: lock(this stub costs nanoseconds and the counter mutex is the serialization point for the fold)
        miller_loop(*g)
    }
}
