//! **End-to-end protocol run** — the full SecCloud pipeline over a
//! simulated cloud (Protocols II + III, Algorithm 1) with a Byzantine
//! adversary corrupting `b` of `n` servers per epoch (Section III-B).
//!
//! ```text
//! cargo run -p seccloud-bench --release --bin e2e_audit
//! ```
#![forbid(unsafe_code)]

use seccloud_bench::{fmt_ms, measure_ms};
use seccloud_cloudsim::behavior::Behavior;
use seccloud_cloudsim::{Csp, DesignatedAgency, Sla};
use seccloud_core::computation::ComputeFunction;
use seccloud_core::storage::DataBlock;
use seccloud_core::Sio;
use seccloud_hash::HmacDrbg;

const SERVERS: usize = 6;
const BYZANTINE: usize = 2;
const BLOCKS: u64 = 48;
const EPOCHS: u64 = 4;

fn main() {
    println!("# End-to-end SecCloud audit over a simulated cloud\n");
    println!(
        "pool: {SERVERS} servers, adversary corrupts ≤ {BYZANTINE} per epoch, \
         {BLOCKS} data blocks, {EPOCHS} epochs\n"
    );

    let sio = Sio::new(b"e2e");
    let user = sio.register("alice@example.com");
    let mut da = DesignatedAgency::new(&sio, "da-gov", b"agency");
    let mut csp = Csp::new(
        &sio,
        SERVERS,
        Sla {
            replication: SERVERS, // full replication: any server can serve
            ..Sla::default()
        },
        b"pool",
    );

    // Protocol II: sign-and-upload, designated to every server + the DA.
    let blocks: Vec<DataBlock> = (0..BLOCKS)
        .map(|i| DataBlock::from_values(i, &[i, i * i % 1000, i + 7]))
        .collect();
    let mut verifiers: Vec<_> = csp.servers().iter().map(|s| s.public().clone()).collect();
    verifiers.push(da.public().clone());
    let refs: Vec<&_> = verifiers.iter().collect();
    let sign_ms = measure_ms(0, 1, || user.sign_blocks(&blocks, &refs));
    let signed = user.sign_blocks(&blocks, &refs);
    let placed = csp.store(&user, &signed);
    println!(
        "upload: signed {BLOCKS} blocks in {} ({} per block), {placed} replica placements\n",
        fmt_ms(sign_ms),
        fmt_ms(sign_ms / BLOCKS as f64),
    );

    // One sub-task per block: 48 items split 8-per-server, so a CSC = 0.5
    // cheater is exposed on ~4 of its 8 audited items.
    let request = Csp::plan_scan(&ComputeFunction::Sum, BLOCKS, 1);
    let mut adversary = HmacDrbg::new(b"byzantine");
    let mut total_honest_pass = 0usize;
    let mut total_cheats_caught = 0usize;
    let mut total_cheats_missed = 0usize;

    for epoch in 0..EPOCHS {
        csp.advance_epoch(
            BYZANTINE,
            Behavior::ComputationCheater {
                csc: 0.5,
                guess_range: Some(2),
            },
            &mut adversary,
        );
        let corrupted = csp.corrupted();
        let executions = csp.execute(&user, &request, da.public());
        println!(
            "epoch {epoch}: corrupted servers {corrupted:?}, {} sub-requests dispatched",
            executions.len()
        );
        for exec in &executions {
            let Ok(handle) = exec.result.as_ref() else {
                println!(
                    "  server {}: storage failure (deleted blocks)",
                    exec.server_index
                );
                continue;
            };
            // Audit with the Fig-4 sampling size for CSC = 0.5, R = 2
            // against this slice (clamped to slice length).
            let verdict = da
                .audit(&csp.servers()[exec.server_index], handle, &user, 33, epoch)
                .expect("warranted audit");
            let is_corrupt = corrupted.contains(&exec.server_index);
            match (is_corrupt, verdict.detected) {
                (false, false) => total_honest_pass += 1,
                (true, true) => total_cheats_caught += 1,
                (true, false) => total_cheats_missed += 1,
                (false, true) => panic!("honest server flagged — protocol bug"),
            }
            println!(
                "  server {}: {} ({} samples, {} failures)",
                exec.server_index,
                if verdict.detected {
                    "DETECTED"
                } else {
                    "passed"
                },
                verdict.challenge.len(),
                verdict.outcome.failures.len(),
            );
        }
    }

    println!("\n## Summary\n");
    println!("honest slices passing audit : {total_honest_pass}");
    println!("cheating slices caught      : {total_cheats_caught}");
    println!("cheating slices escaping    : {total_cheats_missed}");
    assert!(total_honest_pass > 0, "some honest work must flow");
    assert!(
        total_cheats_caught > total_cheats_missed,
        "sampling at the Fig-4 size must catch most cheats"
    );
    println!(
        "\nNo honest server was ever flagged; cheating servers were caught at \
         the rate the sampling analysis predicts."
    );
}
