//! Privacy-cheating discouragement (paper's Privacy-Cheating Model and
//! Definition 2): a hacked cloud server tries to *sell* a user's data to a
//! competitor. The loot includes the designated signatures — but the buyer
//! cannot verify them, and the seller could have forged them anyway, so the
//! data is unauthenticatable merchandise.
//!
//! ```text
//! cargo run --release --example privacy_selling
//! ```

use seccloud::cloudsim::privacy::{counterfactual_public_signature_leak, run_leak_experiment};
use seccloud::cloudsim::{behavior::Behavior, CloudServer};
use seccloud::core::storage::DataBlock;
use seccloud::core::Sio;
use seccloud::hash::HmacDrbg;
use seccloud::ibs::simulate;

fn main() {
    let sio = Sio::new(b"privacy-selling-demo");
    let startup = sio.register("founder@stealth-startup.example");
    let da = sio.register_verifier("da.audit.example");

    // A compromised server exfiltrates everything it stores.
    let mut hacked = CloudServer::new(&sio, "cs-hacked", Behavior::PrivacyLeaker, b"hacked");
    let trade_secrets: Vec<DataBlock> = (0..6u64)
        .map(|i| DataBlock::from_values(i, &[0xdead_0000 + i, 0xbeef_0000 + i]))
        .collect();
    let signed = startup.sign_blocks(&trade_secrets, &[hacked.public(), da.public()]);
    hacked.store(&startup, signed);

    // The "sale": the server hands blocks + designated signatures to a buyer.
    let findings = run_leak_experiment(&sio, &hacked, &startup, da.key());
    println!(
        "leaked blocks offered for sale : {}",
        findings.leaked_blocks
    );
    println!(
        "designee (DA) can verify them  : {}",
        findings.designee_can_verify
    );
    println!(
        "buyer can verify them          : {}",
        findings.buyer_can_verify
    );
    println!(
        "buyer can tell loot from forgery: {}",
        findings.loot_distinguishable_from_forgery
    );
    assert!(findings.privacy_preserved(), "Definition 2 must hold");

    // Why the buyer should not pay: the seller can mass-produce "signed"
    // records for identities that never signed anything.
    let mut forge_rng = HmacDrbg::new(b"forgery-press");
    let fabricated = simulate(
        da.key(), // any designated verifier key works the same way
        startup.public(),
        b"fabricated record the startup never wrote",
        &mut forge_rng,
    );
    let passes = fabricated.verify(
        da.key(),
        startup.public(),
        b"fabricated record the startup never wrote",
    );
    println!("\nforged record passes the designee's own check: {passes}");
    assert!(passes);

    // Counterfactual: with plain publicly-verifiable signatures the buyer
    // COULD authenticate the loot — designation is exactly what it buys.
    let public_leak = counterfactual_public_signature_leak(&sio, &startup, b"secret record");
    println!("counterfactual (public signatures) leak verifiable: {public_leak}");
    assert!(public_leak);

    println!(
        "\nConclusion: with designated verification the stolen data is \
         worthless on the open market — the paper's privacy-cheating \
         discouragement."
    );
}
