//! Socket-level fault injection: a TCP proxy that mangles live frames.
//!
//! [`ChaosProxy`] sits between a [`NetTransport`](crate::NetTransport) and
//! a [`NetServer`](crate::NetServer), relaying whole frames and rolling a
//! seeded die per frame. The fault kinds are the ones a kernel socket can
//! actually produce and the in-memory `FaultyChannel` never could:
//!
//! * **BitFlip** — one payload bit inverted, server→client frames only
//!   (the frame header is left intact so framing stays synchronized; a
//!   flipped *length* would turn channel noise into a fake length-bomb,
//!   which is a different attack with a different — non-transient —
//!   classification; see [`ChaosEngine::decide`] for why requests are
//!   never flipped);
//! * **PartialWrite** — the frame is delivered in two flushed fragments
//!   with a pause between, exercising short-read reassembly; the bytes are
//!   undamaged, so this fault must be *invisible* to the protocol;
//! * **MidFrameCut** — a prefix is delivered, then the connection dies:
//!   the receiver must classify `TruncatedFrame`;
//! * **Stall** — delivery is delayed by a configured hold; below the
//!   peer's deadline it is a latency spike, above it a `Timeout`;
//! * **Churn** — the frame is delivered intact, then the connection is
//!   closed: the next use classifies `ConnectionLost` and reconnects.
//!
//! Determinism follows the testkit convention: every connection gets its
//! own [`HmacDrbg`] keyed by `(seed, connection index)`, and the
//! decide/apply split is pure — [`ChaosEngine::apply`] maps an action and
//! a frame to delivery bytes with no hidden state, so a same-seed replay
//! is byte-identical by construction (and tested).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use seccloud_hash::HmacDrbg;

use crate::frame::{FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_LEN};

/// Tuning for a [`ChaosProxy`] / [`ChaosEngine`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Deterministic seed; same seed + same traffic = same faults.
    pub seed: u64,
    /// Percent of relayed frames hit by a fault (0–100).
    pub fault_rate_pct: u32,
    /// Hold applied by a `Stall` fault, in milliseconds.
    pub stall_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            fault_rate_pct: 20,
            stall_ms: 20,
        }
    }
}

/// What the die decided for one relayed frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Relay untouched.
    Deliver,
    /// Invert one bit of the payload (header untouched).
    BitFlip {
        /// Byte offset within the whole frame.
        byte: usize,
        /// Bit index 0–7.
        bit: u8,
    },
    /// Deliver the frame in two flushed fragments.
    PartialWrite {
        /// Split point within the whole frame.
        cut: usize,
    },
    /// Deliver a prefix, then close the connection.
    MidFrameCut {
        /// Bytes delivered before the cut.
        cut: usize,
    },
    /// Hold the frame for `stall_ms`, then deliver intact.
    Stall,
    /// Deliver intact, then close the connection.
    Churn,
}

/// One frame's worth of (possibly mangled) delivery instructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Byte runs written in order, with a flush after each.
    pub chunks: Vec<Vec<u8>>,
    /// Milliseconds to wait before writing anything.
    pub stall_before_ms: u64,
    /// Milliseconds to wait between chunks.
    pub pause_between_ms: u64,
    /// Whether the connection is closed after the last chunk.
    pub close_after: bool,
}

/// One recorded proxy decision, for post-run assertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Proxy connection index (arrival order).
    pub conn: u64,
    /// Frame ordinal within the connection.
    pub frame: u64,
    /// `true` for client→server frames.
    pub to_server: bool,
    /// What the die decided.
    pub action: ChaosAction,
}

/// The deterministic core: a per-connection die plus the pure fault
/// application. The proxy drives one engine per connection; tests drive it
/// directly to prove replay determinism.
#[derive(Debug)]
pub struct ChaosEngine {
    drbg: HmacDrbg,
    fault_rate_pct: u32,
    stall_ms: u64,
}

impl ChaosEngine {
    /// Builds the engine for connection `conn` under `config.seed`.
    pub fn new(config: &ChaosConfig, conn: u64) -> Self {
        let mut label = Vec::with_capacity(32);
        label.extend_from_slice(b"seccloud-net/chaos/");
        label.extend_from_slice(&config.seed.to_be_bytes());
        label.extend_from_slice(&conn.to_be_bytes());
        Self {
            drbg: HmacDrbg::new(&label),
            fault_rate_pct: config.fault_rate_pct.min(100),
            stall_ms: config.stall_ms,
        }
    }

    /// Rolls the die for a frame of `frame_len` bytes travelling in the
    /// given direction.
    ///
    /// `BitFlip` is only drawn for server→client frames. Client→server
    /// frames carry cryptographically signed material (warrants, signed
    /// blocks), and corrupting a signature is *indistinguishable from
    /// forgery by design* — the server's authenticated rejection would be
    /// final, converting channel noise into a spurious conviction-shaped
    /// outcome. Real deployments put link integrity (TLS) under the
    /// protocol for exactly this reason; the proxy models the socket
    /// faults that remain. The truly socket-shaped faults — cuts, stalls,
    /// churn, fragmentation — fire in both directions.
    pub fn decide(&mut self, frame_len: usize, to_server: bool) -> ChaosAction {
        if self.drbg.next_below(100) >= u64::from(self.fault_rate_pct) {
            return ChaosAction::Deliver;
        }
        let payload_len = frame_len.saturating_sub(FRAME_HEADER_LEN);
        match self.drbg.next_below(5) {
            0 if payload_len > 0 && !to_server => ChaosAction::BitFlip {
                byte: FRAME_HEADER_LEN + self.drbg.next_below(payload_len as u64) as usize,
                bit: self.drbg.next_below(8) as u8,
            },
            1 if frame_len > 1 => ChaosAction::PartialWrite {
                cut: 1 + self.drbg.next_below((frame_len - 1) as u64) as usize,
            },
            2 if frame_len > 1 => ChaosAction::MidFrameCut {
                cut: 1 + self.drbg.next_below((frame_len - 1) as u64) as usize,
            },
            3 => ChaosAction::Stall,
            _ => ChaosAction::Churn,
        }
    }

    /// Pure application: action + frame bytes → delivery. No state, no
    /// clock, no randomness — the byte-identical replay guarantee lives
    /// here.
    pub fn apply(&self, action: ChaosAction, frame: &[u8]) -> Delivery {
        match action {
            ChaosAction::Deliver => Delivery {
                chunks: vec![frame.to_vec()],
                stall_before_ms: 0,
                pause_between_ms: 0,
                close_after: false,
            },
            ChaosAction::BitFlip { byte, bit } => {
                let mut mangled = frame.to_vec();
                if let Some(b) = mangled.get_mut(byte) {
                    *b ^= 1u8 << (bit & 7);
                }
                Delivery {
                    chunks: vec![mangled],
                    stall_before_ms: 0,
                    pause_between_ms: 0,
                    close_after: false,
                }
            }
            ChaosAction::PartialWrite { cut } => {
                let cut = cut.clamp(1, frame.len().max(1));
                Delivery {
                    chunks: vec![
                        frame.get(..cut).unwrap_or_default().to_vec(),
                        frame.get(cut..).unwrap_or_default().to_vec(),
                    ],
                    stall_before_ms: 0,
                    pause_between_ms: 2,
                    close_after: false,
                }
            }
            ChaosAction::MidFrameCut { cut } => {
                let cut = cut.clamp(1, frame.len().max(1));
                Delivery {
                    chunks: vec![frame.get(..cut).unwrap_or_default().to_vec()],
                    stall_before_ms: 0,
                    pause_between_ms: 0,
                    close_after: true,
                }
            }
            ChaosAction::Stall => Delivery {
                chunks: vec![frame.to_vec()],
                stall_before_ms: self.stall_ms,
                pause_between_ms: 0,
                close_after: false,
            },
            ChaosAction::Churn => Delivery {
                chunks: vec![frame.to_vec()],
                stall_before_ms: 0,
                pause_between_ms: 0,
                close_after: true,
            },
        }
    }
}

struct ProxyShared {
    shutdown: AtomicBool,
    conns: AtomicU64,
    plan: Mutex<Vec<ChaosEvent>>,
}

/// A live fault-injecting TCP proxy in front of an upstream server.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChaosProxy({})", self.addr)
    }
}

impl ChaosProxy {
    /// Binds a loopback port and relays every connection to `upstream`
    /// with faults drawn from `config`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ProxyShared {
            shutdown: AtomicBool::new(false),
            conns: AtomicU64::new(0),
            plan: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            // lint: ordering(SeqCst: shutdown latch; single flag, no data published through it)
            while !accept_shared.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        // lint: ordering(Relaxed: monotonic connection counter; the per-connection drbg label is derived from the returned value, not from other shared memory)
                        let conn = accept_shared.conns.fetch_add(1, Ordering::Relaxed);
                        let engine = ChaosEngine::new(&config, conn);
                        let relay_shared = Arc::clone(&accept_shared);
                        std::thread::spawn(move || {
                            relay_connection(client, upstream, engine, conn, &relay_shared);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        });
        Ok(Self {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The loopback address clients should dial instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of every fault decision taken so far, in relay order per
    /// connection.
    pub fn plan(&self) -> Vec<ChaosEvent> {
        self.shared
            .plan
            .lock()
            .map(|p| p.clone())
            .unwrap_or_default()
    }

    /// Stops accepting new connections. In-flight relays notice on their
    /// next frame boundary.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // lint: ordering(SeqCst: shutdown latch; pairs with the accept-loop load)
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one raw frame (header + payload, unparsed beyond the length) from
/// a relay socket. Returns `None` on EOF/desync/deadline — any of which
/// ends the relay.
fn read_raw_frame<R: std::io::Read>(stream: &mut R, shutdown: &AtomicBool) -> Option<Vec<u8>> {
    let mut frame = vec![0u8; FRAME_HEADER_LEN];
    read_exact_relay(stream, &mut frame, shutdown)?;
    if frame.get(..FRAME_MAGIC.len()) != Some(&FRAME_MAGIC[..]) {
        return None;
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(frame.get(FRAME_MAGIC.len()..FRAME_HEADER_LEN)?);
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return None;
    }
    let start = frame.len();
    frame.resize(start + len, 0);
    read_exact_relay(stream, &mut frame[start..], shutdown)?;
    Some(frame)
}

fn read_exact_relay<R: std::io::Read>(
    stream: &mut R,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> Option<()> {
    let mut got = 0usize;
    while got < buf.len() {
        // lint: ordering(SeqCst: shutdown latch; single flag, no data published through it)
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        match stream.read(buf.get_mut(got..)?) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return None,
        }
    }
    Some(())
}

/// Writes one delivery to `stream`; returns `false` when the connection
/// must close (fault-induced or peer-gone).
fn write_delivery<W: std::io::Write>(stream: &mut W, delivery: &Delivery) -> bool {
    if delivery.stall_before_ms > 0 {
        std::thread::sleep(Duration::from_millis(delivery.stall_before_ms));
    }
    for (i, chunk) in delivery.chunks.iter().enumerate() {
        if i > 0 && delivery.pause_between_ms > 0 {
            std::thread::sleep(Duration::from_millis(delivery.pause_between_ms));
        }
        if stream
            .write_all(chunk)
            .and_then(|()| stream.flush())
            .is_err()
        {
            return false;
        }
    }
    !delivery.close_after
}

fn relay_connection(
    mut client: TcpStream,
    upstream_addr: SocketAddr,
    mut engine: ChaosEngine,
    conn: u64,
    shared: &ProxyShared,
) {
    // Short read timeouts keep the relay responsive to shutdown; write
    // timeouts bound delivery so a stalled peer cannot wedge the relay
    // thread mid-frame. Actual deadline *semantics* live at the endpoints,
    // not in the proxy.
    let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = client.set_write_timeout(Some(Duration::from_millis(1_000)));
    let Ok(mut upstream) = TcpStream::connect_timeout(&upstream_addr, Duration::from_millis(1_000))
    else {
        return;
    };
    let _ = upstream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = upstream.set_write_timeout(Some(Duration::from_millis(1_000)));
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);

    let mut frame_no = 0u64;
    loop {
        // Client → server.
        let Some(request) = read_raw_frame(&mut client, &shared.shutdown) else {
            return;
        };
        if !relay_one(
            &mut engine,
            &request,
            &mut upstream,
            conn,
            frame_no,
            true,
            shared,
        ) {
            return;
        }
        frame_no += 1;
        // Server → client.
        let Some(response) = read_raw_frame(&mut upstream, &shared.shutdown) else {
            return;
        };
        if !relay_one(
            &mut engine,
            &response,
            &mut client,
            conn,
            frame_no,
            false,
            shared,
        ) {
            return;
        }
        frame_no += 1;
    }
}

fn relay_one<W: std::io::Write>(
    engine: &mut ChaosEngine,
    frame: &[u8],
    dest: &mut W,
    conn: u64,
    frame_no: u64,
    to_server: bool,
    shared: &ProxyShared,
) -> bool {
    let action = engine.decide(frame.len(), to_server);
    if let Ok(mut plan) = shared.plan.lock() {
        plan.push(ChaosEvent {
            conn,
            frame: frame_no,
            to_server,
            action,
        });
    }
    let delivery = engine.apply(action, frame);
    write_delivery(dest, &delivery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;

    fn scripted_frames() -> Vec<Vec<u8>> {
        (0u8..32)
            .map(|i| encode_frame(&vec![i; 3 + i as usize * 7]))
            .collect()
    }

    #[test]
    fn same_seed_replay_is_byte_identical() {
        let config = ChaosConfig {
            seed: 7,
            fault_rate_pct: 60,
            stall_ms: 5,
        };
        let frames = scripted_frames();
        let run = |cfg: &ChaosConfig| {
            let mut engine = ChaosEngine::new(cfg, 0);
            frames
                .iter()
                .map(|f| {
                    let action = engine.decide(f.len(), false);
                    (action, engine.apply(action, f))
                })
                .collect::<Vec<_>>()
        };
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a, b, "same seed must replay byte-identically");
        // And a different seed actually changes the fault schedule.
        let other = run(&ChaosConfig { seed: 8, ..config });
        assert_ne!(
            a.iter().map(|(act, _)| *act).collect::<Vec<_>>(),
            other.iter().map(|(act, _)| *act).collect::<Vec<_>>(),
            "different seed should draw a different schedule"
        );
    }

    #[test]
    fn bit_flips_never_touch_the_header() {
        let config = ChaosConfig {
            seed: 3,
            fault_rate_pct: 100,
            stall_ms: 0,
        };
        let mut engine = ChaosEngine::new(&config, 1);
        let frame = encode_frame(&[0u8; 64]);
        for _ in 0..512 {
            if let ChaosAction::BitFlip { byte, .. } = engine.decide(frame.len(), false) {
                assert!(
                    byte >= FRAME_HEADER_LEN && byte < frame.len(),
                    "flip at {byte} would desync framing"
                );
            }
        }
    }

    #[test]
    fn fault_rate_zero_always_delivers() {
        let config = ChaosConfig {
            seed: 11,
            fault_rate_pct: 0,
            stall_ms: 0,
        };
        let mut engine = ChaosEngine::new(&config, 0);
        for f in scripted_frames() {
            assert_eq!(engine.decide(f.len(), false), ChaosAction::Deliver);
        }
    }

    #[test]
    fn applied_deliveries_reassemble_to_the_frame_unless_cut() {
        let config = ChaosConfig {
            seed: 5,
            fault_rate_pct: 100,
            stall_ms: 1,
        };
        let mut engine = ChaosEngine::new(&config, 2);
        for f in scripted_frames() {
            let action = engine.decide(f.len(), false);
            let d = engine.apply(action, &f);
            let total: Vec<u8> = d.chunks.concat();
            match action {
                ChaosAction::MidFrameCut { cut } => {
                    assert_eq!(total, f[..cut.min(f.len())].to_vec());
                    assert!(d.close_after);
                }
                ChaosAction::BitFlip { .. } => {
                    assert_eq!(total.len(), f.len());
                    assert_ne!(total, f, "one bit must differ");
                }
                ChaosAction::Deliver
                | ChaosAction::PartialWrite { .. }
                | ChaosAction::Stall
                | ChaosAction::Churn => {
                    assert_eq!(total, f, "{action:?} must deliver the frame intact");
                }
            }
        }
    }
}
