//! Adaptive challenge escalation along the paper's uncheatability bound.
//!
//! Section VII bounds a cheating server's escape probability at
//! `Pr[FCS] = base^t` for a `t`-sample challenge (eq. 10). Escalation
//! doubles `t` per suspicion step — `t' = min(2ˢ·t, n)` — which *squares*
//! the escape bound each step while capping at a full audit. Retrying at
//! the same `t` would let a lucky partial cheater keep re-rolling the same
//! dice; escalating makes every suspicious round strictly harder to
//! survive.

/// The escalated sample size after `steps` suspicion steps:
/// `min(base_t · 2^steps, n)`, never below 1 (for nonempty requests) and
/// never above the request size `n`.
pub fn escalate_sample_size(base_t: usize, n: usize, steps: u32) -> usize {
    if n == 0 {
        return 0;
    }
    let base = base_t.clamp(1, n);
    let factor = 1usize.checked_shl(steps.min(63)).unwrap_or(usize::MAX);
    base.saturating_mul(factor).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seccloud_core::analysis::sampling::{fcs_probability, CheatParams};

    #[test]
    fn doubles_per_step_and_caps_at_full_audit() {
        assert_eq!(escalate_sample_size(4, 100, 0), 4);
        assert_eq!(escalate_sample_size(4, 100, 1), 8);
        assert_eq!(escalate_sample_size(4, 100, 3), 32);
        assert_eq!(escalate_sample_size(4, 100, 5), 100, "capped at n");
        assert_eq!(escalate_sample_size(4, 100, 200), 100, "huge step count");
    }

    #[test]
    fn clamps_degenerate_inputs() {
        assert_eq!(escalate_sample_size(0, 10, 0), 1, "at least one sample");
        assert_eq!(escalate_sample_size(50, 10, 0), 10, "base above n");
        assert_eq!(escalate_sample_size(3, 0, 4), 0, "empty request");
    }

    #[test]
    fn overflow_and_exact_clamp_edges() {
        // t = 0 still escalates from the 1-sample floor.
        assert_eq!(escalate_sample_size(0, 7, 3), 7, "1·2³ = 8 clamps to n = 7");
        // 2^s·t landing exactly on n: the clamp is inclusive.
        assert_eq!(escalate_sample_size(2, 16, 3), 16);
        // 2^63·t overflows usize: saturating_mul pins to usize::MAX, min() to n.
        assert_eq!(escalate_sample_size(3, 1_000_000, 63), 1_000_000);
        // Shift counts at and past the word size are pinned, not UB.
        assert_eq!(escalate_sample_size(2, 500, 64), 500);
        assert_eq!(escalate_sample_size(1, usize::MAX, 63), 1usize << 63);
    }

    #[test]
    fn one_step_squares_the_fcs_escape_bound() {
        // Pr[FCS] = base^t, so t' = 2t gives base^(2t) = (base^t)².
        let params = CheatParams::new(0.5, 1.0);
        for t in [1usize, 2, 5, 8] {
            let t2 = escalate_sample_size(t, 1_000, 1);
            assert_eq!(t2, 2 * t);
            let p1 = fcs_probability(&params, t as u32);
            let p2 = fcs_probability(&params, t2 as u32);
            assert!((p2 - p1 * p1).abs() < 1e-12, "t={t}: {p2} vs {}", p1 * p1);
        }
    }

    #[test]
    fn escalation_never_weakens_the_bound() {
        let params = CheatParams::new(0.7, 1.0).with_range(100.0);
        let mut last = f64::INFINITY;
        for steps in 0..8 {
            let t = escalate_sample_size(2, 64, steps);
            let p = fcs_probability(&params, t as u32);
            assert!(p <= last + 1e-15, "step {steps} weakened the bound");
            last = p;
        }
        assert_eq!(escalate_sample_size(2, 64, 7), 64, "ends at full audit");
    }
}
